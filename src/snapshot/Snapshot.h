//===-- snapshot/Snapshot.h - Persistent zero-copy snapshots ----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence for `FrozenGraph`: write a closed, frozen analysis to the
/// on-disk format in `Format.h`, and load it back by `mmap`-ing the file
/// read-only — the loaded `FrozenGraph` view's spans point straight into
/// the mapping, so a warm load costs one map plus checksum validation,
/// never a parse/close/freeze.
///
/// Three layers:
///
///   * `writeSnapshot` — serializes a frozen graph (plus pre-rendered
///     name tables, source ranges, the condensation, and optionally the
///     complete label-set kernel matrix) and renames it into place
///     atomically.
///   * `LoadedSnapshot` — owns the mapping and the span-backed
///     `FrozenGraph` view; exposes the persisted names so the driver can
///     render query output byte-identically to the in-memory path.
///   * the content-addressed cache — `snapshotCacheKey` hashes source
///     text + format version + analysis configuration into a stable key;
///     `snapshotCachePath` places it under `--snapshot-dir`,
///     `$STCFA_SNAPSHOT_DIR`, or `~/.cache/stcfa`.
///
/// Every failure — unwritable path, short file, bad magic, version or
/// endianness mismatch, checksum mismatch, out-of-bounds section —
/// surfaces as a `Status`; the fault-injection sites `snapshot.*`
/// (FaultInjection.h) pin that contract in the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SNAPSHOT_SNAPSHOT_H
#define STCFA_SNAPSHOT_SNAPSHOT_H

#include "core/FrozenGraph.h"
#include "snapshot/Format.h"
#include "support/Diagnostics.h"
#include "support/Status.h"

#include <memory>
#include <span>
#include <string>
#include <string_view>

namespace stcfa {

class LabelSetKernel;
class Module;

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

/// Optional extras persisted alongside the graph tables.
struct SnapshotWriteOptions {
  /// The source program's cache key (`snapshotCacheKey`); stored in the
  /// header so a loader can verify the snapshot matches its input.
  /// 0 = unknown/unchecked.
  uint64_t ContentHash = 0;
  /// A *complete* label-set kernel whose row matrix should be persisted
  /// (warm loads then adopt it and skip the closure). Null = omit.
  const LabelSetKernel *Kernel = nullptr;
};

/// Serializes \p F (frozen from \p M's pipeline) to \p Path: writes to a
/// temporary sibling, fsyncs, and renames into place, so a crashed or
/// faulted write never leaves a half-written snapshot under the final
/// name.  Returns `Ok` or the failure reason (`InvalidArgument` for an
/// inert snapshot, `OutOfMemory` for the injected alloc fault,
/// `Internal` for I/O errors).
Status writeSnapshot(const std::string &Path, const FrozenGraph &F,
                     const Module &M,
                     const SnapshotWriteOptions &Opts = {});

//===----------------------------------------------------------------------===//
// Loading
//===----------------------------------------------------------------------===//

/// A read-only `mmap` of a whole file (RAII; movable, not copyable).
class MappedFile {
public:
  MappedFile() = default;
  MappedFile(MappedFile &&O) noexcept : Data(O.Data), Size(O.Size) {
    O.Data = nullptr;
    O.Size = 0;
  }
  MappedFile &operator=(MappedFile &&O) noexcept;
  ~MappedFile();

  /// Maps \p Path read-only.  On failure returns a default (unmapped)
  /// object with \p Out explaining why.
  static MappedFile open(const std::string &Path, Status &Out);

  bool mapped() const { return Data != nullptr; }
  const unsigned char *data() const { return Data; }
  size_t size() const { return Size; }

private:
  const unsigned char *Data = nullptr;
  size_t Size = 0;
};

/// A validated, mmap-backed snapshot: the `FrozenGraph` view plus the
/// persisted name/source tables.  Immutable after `load`; keep it alive
/// as long as any span or the frozen view is in use.
class LoadedSnapshot {
public:
  /// Maps and validates \p Path.  Null on any failure, with \p Out
  /// carrying the reason; a non-null result passed every header, bounds,
  /// and checksum test.
  static std::unique_ptr<LoadedSnapshot> load(const std::string &Path,
                                              Status &Out);

  /// The zero-copy query view (`hasSource()` is false).
  const FrozenGraph &frozen() const { return *F; }

  /// Header fields.
  uint64_t contentHash() const { return ContentHash; }
  bool hasKernelRows() const { return KernelWordsPerSet != 0 || !KernelRows.empty(); }

  /// The module root occurrence, for the default `labels` query.
  ExprId rootExpr() const { return ExprId(RootExpr); }

  /// Pre-rendered `describeExpr` string of occurrence \p I.
  std::string_view exprName(uint32_t I) const {
    return {StringBlob.data() + ExprNameOffsets[I],
            StringBlob.data() + ExprNameOffsets[I + 1]};
  }
  /// Pre-rendered `describeLabel` string of label \p I.
  std::string_view labelName(uint32_t I) const {
    return {StringBlob.data() + LabelNameOffsets[I],
            StringBlob.data() + LabelNameOffsets[I + 1]};
  }
  /// Source range of occurrence \p I.
  SourceRange exprRange(uint32_t I) const {
    const uint32_t *R = SourceRanges.data() + 4 * size_t(I);
    return {{R[0], R[1]}, {R[2], R[3]}};
  }

  /// Builds a born-complete kernel over the persisted row matrix, or
  /// null when the snapshot carries none.  The caller typically hands it
  /// to `QueryEngine::adoptKernel`; it borrows this snapshot's mapping.
  std::unique_ptr<LabelSetKernel> adoptKernel() const;

private:
  LoadedSnapshot() = default;

  MappedFile Map;
  std::unique_ptr<FrozenGraph> F;
  uint64_t ContentHash = 0;
  uint32_t RootExpr = 0;
  uint32_t KernelWordsPerSet = 0;
  std::span<const char> StringBlob;
  std::span<const uint32_t> ExprNameOffsets, LabelNameOffsets, SourceRanges;
  std::span<const uint64_t> KernelRows;
};

//===----------------------------------------------------------------------===//
// Content-addressed cache
//===----------------------------------------------------------------------===//

/// The cache key: source text + format version + the analysis
/// configuration that shapes the frozen tables (\p Config, e.g.
/// `"congruence=bytype;policy=paper"`).  Stable across processes and
/// runs; any format bump changes every key.
uint64_t snapshotCacheKey(std::string_view Source, std::string_view Config);

/// The cache directory: \p Override if non-empty, else
/// `$STCFA_SNAPSHOT_DIR`, else `$XDG_CACHE_HOME/stcfa`, else
/// `$HOME/.cache/stcfa`, else `.stcfa-cache`.  Does not create it.
std::string snapshotCacheDir(const std::string &Override = {});

/// `<dir>/<key as 16 hex digits>.stcfa-snap`.
std::string snapshotCachePath(const std::string &Dir, uint64_t Key);

/// Creates \p Dir (and missing parents) if needed.
Status ensureSnapshotDir(const std::string &Dir);

/// Bounds the cache directory to \p MaxBytes by deleting `*.stcfa-snap`
/// entries oldest-mtime-first (LRU: loads and fills both refresh mtime)
/// until the remaining entries fit.  Counts each unlink in the
/// `snapshot.cache-evictions` counter and returns how many entries were
/// evicted.  A missing directory is an empty cache (returns 0);
/// non-snapshot files are never touched.
size_t enforceSnapshotCacheBudget(const std::string &Dir, uint64_t MaxBytes);

/// Refreshes \p Path's mtime (best-effort) so the LRU eviction order
/// tracks cache *hits*, not just fills.  Call after serving a snapshot
/// from the cache.
void touchSnapshotEntry(const std::string &Path);

} // namespace stcfa

#endif // STCFA_SNAPSHOT_SNAPSHOT_H
