//===-- types/Type.h - Hash-consed monotypes --------------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed monotypes.  The subtransitive algorithm itself never looks
/// at types (Section 4: "the algorithm only needs to know that the types
/// exist"), but the reproduction needs them for three things:
///
///   1. defining and *measuring* the bounded-type classes (type-tree size,
///      order, arity — the `k` and `k_avg` of Sections 1, 4 and 10),
///   2. the datatype congruences ≈1 and ≈2 of Section 6, which merge graph
///      nodes whose associated type is the same datatype, and
///   3. rejecting ill-typed inputs, since the termination guarantee only
///      holds for typed programs.
///
/// Types are interned in a `TypeTable`, so `TypeId` equality is type
/// equality.  Type variables are represented structurally (`Var k`); the
/// Hindley–Milner inference in `sema/Infer.h` layers a union-find binding
/// table over the variable indices.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_TYPES_TYPE_H
#define STCFA_TYPES_TYPE_H

#include "support/Hashing.h"
#include "support/Ids.h"
#include "support/StringInterner.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

namespace stcfa {

enum class TypeKind : uint8_t {
  Int,
  Bool,
  Unit,
  String,
  Var,   // unification variable / generalised type parameter
  Arrow, // T1 -> T2
  Tuple, // (T1, ..., Tn), n >= 2
  Data,  // named datatype
  Ref,   // mutable cell
};

/// One interned type node.
struct Type {
  TypeKind Kind;
  /// Var: variable number.  Arrow: unused.  Tuple: unused.  Data: unused.
  uint32_t VarNum = 0;
  /// Data: the datatype name.
  Symbol Name;
  /// Arrow: {param, result}.  Tuple: the fields.  Ref: {content}.
  std::vector<TypeId> Args;
};

/// Interns types; owned by a `Module`.
class TypeTable {
public:
  TypeTable() {
    IntTy = get({TypeKind::Int, 0, Symbol(), {}});
    BoolTy = get({TypeKind::Bool, 0, Symbol(), {}});
    UnitTy = get({TypeKind::Unit, 0, Symbol(), {}});
    StringTy = get({TypeKind::String, 0, Symbol(), {}});
  }

  TypeId intType() const { return IntTy; }
  TypeId boolType() const { return BoolTy; }
  TypeId unitType() const { return UnitTy; }
  TypeId stringType() const { return StringTy; }

  TypeId varType(uint32_t VarNum) {
    return get({TypeKind::Var, VarNum, Symbol(), {}});
  }
  TypeId arrowType(TypeId Param, TypeId Result) {
    return get({TypeKind::Arrow, 0, Symbol(), {Param, Result}});
  }
  TypeId tupleType(std::vector<TypeId> Fields) {
    assert(Fields.size() >= 2 && "tuple types have at least two fields");
    return get({TypeKind::Tuple, 0, Symbol(), std::move(Fields)});
  }
  TypeId dataType(Symbol Name) {
    return get({TypeKind::Data, 0, Name, {}});
  }
  TypeId refType(TypeId Content) {
    return get({TypeKind::Ref, 0, Symbol(), {Content}});
  }

  const Type &type(TypeId Id) const {
    assert(Id.isValid() && Id.index() < Nodes.size() && "bad type id");
    return Nodes[Id.index()];
  }

  uint32_t size() const { return static_cast<uint32_t>(Nodes.size()); }

  /// Tree size of the type (number of nodes, counting `Data` leaves as 1).
  /// This is the paper's type-size measure for the bounded-type classes.
  uint32_t treeSize(TypeId Id) const;

  /// Order: base types and datatypes have order 0; an arrow's order is
  /// `max(order(param) + 1, order(result))`; tuples/refs take the max of
  /// their fields.
  uint32_t order(TypeId Id) const;

  /// Arity under the paper's currying convention: the number of arrows on
  /// the result spine (`Int -> Int -> Int` has arity 2).
  uint32_t arity(TypeId Id) const;

  /// Renders the type as source syntax (`(Int -> Bool, IntList)`).
  std::string render(TypeId Id, const StringInterner &Strings) const;

private:
  TypeId get(Type T);
  uint64_t hashType(const Type &T) const;
  /// Like `render`, but parenthesizes arrows and refs so the result can be
  /// embedded on the left of `->`.
  std::string renderAtom(TypeId Id, const StringInterner &Strings) const;

  std::vector<Type> Nodes;
  std::unordered_map<uint64_t, std::vector<TypeId>> Buckets;
  TypeId IntTy, BoolTy, UnitTy, StringTy;
};

} // namespace stcfa

#endif // STCFA_TYPES_TYPE_H
