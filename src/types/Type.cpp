//===-- types/Type.cpp - Hash-consed monotypes ----------------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "types/Type.h"

#include <algorithm>

using namespace stcfa;

TypeId TypeTable::get(Type T) {
  uint64_t H = hashType(T);
  std::vector<TypeId> &Bucket = Buckets[H];
  for (TypeId Id : Bucket) {
    const Type &Existing = Nodes[Id.index()];
    if (Existing.Kind == T.Kind && Existing.VarNum == T.VarNum &&
        Existing.Name == T.Name && Existing.Args == T.Args)
      return Id;
  }
  TypeId Id(static_cast<uint32_t>(Nodes.size()));
  Nodes.push_back(std::move(T));
  Bucket.push_back(Id);
  return Id;
}

uint64_t TypeTable::hashType(const Type &T) const {
  uint64_t H = hashCombine(static_cast<uint64_t>(T.Kind),
                           (uint64_t(T.VarNum) << 32) | (T.Name.index() + 1));
  for (TypeId A : T.Args)
    H = hashCombine(H, A.index());
  return H;
}

uint32_t TypeTable::treeSize(TypeId Id) const {
  const Type &T = type(Id);
  uint32_t Size = 1;
  for (TypeId A : T.Args)
    Size += treeSize(A);
  return Size;
}

uint32_t TypeTable::order(TypeId Id) const {
  const Type &T = type(Id);
  switch (T.Kind) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
  case TypeKind::String:
  case TypeKind::Var:
  case TypeKind::Data:
    return 0;
  case TypeKind::Arrow:
    return std::max(order(T.Args[0]) + 1, order(T.Args[1]));
  case TypeKind::Tuple:
  case TypeKind::Ref: {
    uint32_t Max = 0;
    for (TypeId A : T.Args)
      Max = std::max(Max, order(A));
    return Max;
  }
  }
  assert(false && "unknown type kind");
  return 0;
}

uint32_t TypeTable::arity(TypeId Id) const {
  const Type &T = type(Id);
  if (T.Kind != TypeKind::Arrow)
    return 0;
  return 1 + arity(T.Args[1]);
}

std::string TypeTable::renderAtom(TypeId Id,
                                  const StringInterner &Strings) const {
  const Type &T = type(Id);
  if (T.Kind == TypeKind::Arrow || T.Kind == TypeKind::Ref)
    return "(" + render(Id, Strings) + ")";
  return render(Id, Strings);
}

std::string TypeTable::render(TypeId Id, const StringInterner &Strings) const {
  const Type &T = type(Id);
  switch (T.Kind) {
  case TypeKind::Int:
    return "Int";
  case TypeKind::Bool:
    return "Bool";
  case TypeKind::Unit:
    return "Unit";
  case TypeKind::String:
    return "String";
  case TypeKind::Var:
    return "'t" + std::to_string(T.VarNum);
  case TypeKind::Data:
    return std::string(Strings.text(T.Name));
  case TypeKind::Ref:
    return "Ref " + renderAtom(T.Args[0], Strings);
  case TypeKind::Arrow:
    return renderAtom(T.Args[0], Strings) + " -> " +
           render(T.Args[1], Strings);
  case TypeKind::Tuple: {
    std::string Out = "(";
    for (size_t I = 0; I != T.Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += render(T.Args[I], Strings);
    }
    return Out + ")";
  }
  }
  assert(false && "unknown type kind");
  return "?";
}
