//===-- core/Reachability.h - Graph-reachability CFA queries ----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow queries as plain graph reachability over the subtransitive
/// graph — the payoff of the paper's factorisation (Section 2's table):
///
///   * `isLabelIn`      — Algorithm 1, O(n) per query
///   * `labelsOf`       — Algorithm 2, O(n) per query
///   * `occurrencesOf`  — reverse reachability, O(n) per query
///   * `allLabelSets`   — O(n^2) total (output-optimal), naive or
///                        SCC-condensation based
///
/// Queries never mutate the graph; run them after `build()` + `close()`.
///
/// Aborted-graph contract: a graph whose close phase was stopped by a
/// budget, deadline, or cancellation (`G.aborted()`) is incomplete, and
/// reachability over it would be unsound (missing flows).  Queries on an
/// aborted graph assert in debug builds and return *empty* answers in
/// release builds, with `status()` reporting `FailedPrecondition` —
/// never a partial, silently-wrong set.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_CORE_REACHABILITY_H
#define STCFA_CORE_REACHABILITY_H

#include "core/SubtransitiveGraph.h"
#include "support/DenseBitset.h"
#include "support/Status.h"

namespace stcfa {

/// Reachability query engine over a closed subtransitive graph.
class Reachability {
public:
  explicit Reachability(const SubtransitiveGraph &G);

  /// Algorithm 1: is the abstraction labelled \p L a possible value of
  /// occurrence \p E?
  bool isLabelIn(ExprId E, LabelId L);

  /// Algorithm 2: all abstraction labels reachable from \p E.
  DenseBitset labelsOf(ExprId E);

  /// All labels reachable from the binder \p V.
  DenseBitset labelsOfVar(VarId V);

  /// All labels reachable from graph node \p N.
  DenseBitset labelsOfNode(NodeId N);

  /// All expression occurrences whose label set contains \p L (reverse
  /// reachability from the abstraction node).
  std::vector<ExprId> occurrencesOf(LabelId L);

  /// Complete CFA information: a label set per expression occurrence.
  /// Quadratic; with \p UseScc the graph is first condensed and sets are
  /// propagated over the DAG (same asymptotics, better constants on graphs
  /// with large strongly connected components).
  std::vector<DenseBitset> allLabelSets(bool UseScc = false);

  /// Nodes touched by queries so far (machine-independent work measure).
  uint64_t nodesVisited() const { return Visited; }

  /// `Ok` over a usable graph; `FailedPrecondition` when the source
  /// graph is aborted (every query then answers empty).
  const Status &status() const { return QueryStatus; }

private:
  /// True when queries may run; false (with `QueryStatus` set) over an
  /// aborted graph.
  bool usable() const;
  template <typename FnT> void forEachReachable(NodeId Start, FnT Fn);
  /// Advances the query epoch, zeroing all stamps when the 32-bit
  /// counter wraps (a long-lived object answers > 2^32 queries).
  void bumpEpoch();

  const SubtransitiveGraph &G;
  const Module &M;
  /// Epoch-stamped visit marks: O(1) reset between queries.
  std::vector<uint32_t> Stamp;
  uint32_t Epoch = 0;
  std::vector<NodeId> Stack;
  uint64_t Visited = 0;
  mutable Status QueryStatus;
};

} // namespace stcfa

#endif // STCFA_CORE_REACHABILITY_H
