//===-- core/Reachability.cpp - Graph-reachability CFA queries ------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Reachability.h"

#include <algorithm>

using namespace stcfa;

Reachability::Reachability(const SubtransitiveGraph &G)
    : G(G), M(G.module()), Stamp(G.numNodes(), 0) {}

template <typename FnT>
void Reachability::forEachReachable(NodeId Start, FnT Fn) {
  ++Epoch;
  Stack.clear();
  Stack.push_back(Start);
  Stamp[Start.index()] = Epoch;
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    ++Visited;
    if (!Fn(N))
      return;
    for (NodeId S : G.succs(N)) {
      if (Stamp[S.index()] == Epoch)
        continue;
      Stamp[S.index()] = Epoch;
      Stack.push_back(S);
    }
  }
}

bool Reachability::isLabelIn(ExprId E, LabelId L) {
  NodeId Start = G.lookupExprNode(E);
  if (!Start.isValid())
    return false;
  bool Found = false;
  forEachReachable(Start, [&](NodeId N) {
    if (G.labelOf(N) == L) {
      Found = true;
      return false; // stop the search
    }
    return true;
  });
  return Found;
}

DenseBitset Reachability::labelsOfNode(NodeId N) {
  DenseBitset Out(M.numLabels());
  forEachReachable(N, [&](NodeId R) {
    if (LabelId L = G.labelOf(R); L.isValid())
      Out.insert(L.index());
    return true;
  });
  return Out;
}

DenseBitset Reachability::labelsOf(ExprId E) {
  NodeId Start = G.lookupExprNode(E);
  if (!Start.isValid())
    return DenseBitset(M.numLabels());
  return labelsOfNode(Start);
}

DenseBitset Reachability::labelsOfVar(VarId V) {
  NodeId Start = G.lookupVarNode(V);
  if (!Start.isValid())
    return DenseBitset(M.numLabels());
  return labelsOfNode(Start);
}

std::vector<ExprId> Reachability::occurrencesOf(LabelId L) {
  std::vector<ExprId> Out;
  // Polyvariant instantiations carry labels on separate `Label` nodes, so
  // the reverse search starts from both.
  ++Epoch;
  Stack.clear();
  for (NodeId Root : {G.lookupExprNode(M.lamOfLabel(L)),
                      G.lookupLabelNode(L)}) {
    if (!Root.isValid())
      continue;
    Stack.push_back(Root);
    Stamp[Root.index()] = Epoch;
  }
  if (Stack.empty())
    return Out;
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    ++Visited;
    for (NodeId P : G.preds(N)) {
      if (Stamp[P.index()] == Epoch)
        continue;
      Stamp[P.index()] = Epoch;
      Stack.push_back(P);
    }
  }

  // A congruence summary node may stand for many occurrences, so map
  // expressions to their canonical nodes rather than the reverse.
  for (uint32_t I = 0, E = M.numExprs(); I != E; ++I) {
    NodeId N = G.lookupExprNode(ExprId(I));
    if (N.isValid() && Stamp[N.index()] == Epoch)
      Out.push_back(ExprId(I));
  }
  return Out;
}

std::vector<DenseBitset> Reachability::allLabelSets(bool UseScc) {
  std::vector<DenseBitset> Out(M.numExprs(), DenseBitset(M.numLabels()));

  if (!UseScc) {
    // Repeated Algorithm 2, memoized per canonical node (congruence
    // summaries stand for many occurrences).
    std::vector<DenseBitset> PerNode(G.numNodes());
    std::vector<bool> Done(G.numNodes(), false);
    for (uint32_t I = 0, E = M.numExprs(); I != E; ++I) {
      NodeId N = G.lookupExprNode(ExprId(I));
      if (!N.isValid())
        continue;
      if (!Done[N.index()]) {
        PerNode[N.index()] = labelsOfNode(N);
        Done[N.index()] = true;
      }
      Out[I] = PerNode[N.index()];
    }
    return Out;
  }

  // SCC condensation (iterative Tarjan), then one bottom-up union pass
  // over the DAG in reverse topological order.
  uint32_t NumNodes = G.numNodes();
  std::vector<uint32_t> Index(NumNodes, 0), Low(NumNodes, 0),
      SccOf(NumNodes, ~0u);
  std::vector<bool> OnStack(NumNodes, false);
  std::vector<uint32_t> TarjanStack;
  uint32_t NextIndex = 1, NumSccs = 0;

  using EdgeIter = SubtransitiveGraph::EdgeRange::iterator;
  struct Frame {
    uint32_t Node;
    EdgeIter Next;
    EdgeIter End;
  };
  std::vector<Frame> Frames;
  for (uint32_t Root = 0; Root != NumNodes; ++Root) {
    if (Index[Root] != 0)
      continue;
    auto RootRange = G.succs(NodeId(Root));
    Frames.push_back({Root, RootRange.begin(), RootRange.end()});
    Index[Root] = Low[Root] = NextIndex++;
    TarjanStack.push_back(Root);
    OnStack[Root] = true;
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      if (F.Next != F.End) {
        uint32_t S = (*F.Next).index();
        ++F.Next;
        if (Index[S] == 0) {
          Index[S] = Low[S] = NextIndex++;
          TarjanStack.push_back(S);
          OnStack[S] = true;
          auto SRange = G.succs(NodeId(S));
          Frames.push_back({S, SRange.begin(), SRange.end()});
        } else if (OnStack[S]) {
          Low[F.Node] = std::min(Low[F.Node], Index[S]);
        }
        continue;
      }
      ++Visited;
      uint32_t N = F.Node;
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().Node] = std::min(Low[Frames.back().Node], Low[N]);
      if (Low[N] != Index[N])
        continue;
      // N is an SCC root: pop its component.
      uint32_t Scc = NumSccs++;
      while (true) {
        uint32_t W = TarjanStack.back();
        TarjanStack.pop_back();
        OnStack[W] = false;
        SccOf[W] = Scc;
        if (W == N)
          break;
      }
    }
  }

  // Tarjan assigns SCC ids in completion order, and every SCC reachable
  // from component C completes before C does, so ascending id order sees
  // all successors of a component finalized before the component itself.
  std::vector<std::vector<uint32_t>> NodesOfScc(NumSccs);
  for (uint32_t N = 0; N != NumNodes; ++N)
    NodesOfScc[SccOf[N]].push_back(N);
  std::vector<DenseBitset> SccLabels(NumSccs, DenseBitset(M.numLabels()));
  for (uint32_t Scc = 0; Scc != NumSccs; ++Scc) {
    DenseBitset &Set = SccLabels[Scc];
    for (uint32_t N : NodesOfScc[Scc]) {
      if (LabelId L = G.labelOf(NodeId(N)); L.isValid())
        Set.insert(L.index());
      for (NodeId S : G.succs(NodeId(N)))
        if (SccOf[S.index()] != Scc)
          Set.unionWith(SccLabels[SccOf[S.index()]]);
    }
  }

  for (uint32_t I = 0, E = M.numExprs(); I != E; ++I) {
    NodeId N = G.lookupExprNode(ExprId(I));
    if (N.isValid())
      Out[I] = SccLabels[SccOf[N.index()]];
  }
  return Out;
}
