//===-- core/Reachability.cpp - Graph-reachability CFA queries ------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Reachability.h"

#include "core/Condensation.h"

#include <algorithm>

using namespace stcfa;

Reachability::Reachability(const SubtransitiveGraph &G)
    : G(G), M(G.module()), Stamp(G.numNodes(), 0) {}

bool Reachability::usable() const {
  // Checked dynamically rather than at construction: an aborted graph
  // must answer empty even if the abort happened after this engine was
  // created (the incremental close path).
  if (!G.aborted())
    return true;
  assert(false && "querying an aborted graph");
  QueryStatus = Status::failedPrecondition(
      "query on an aborted graph: " + G.closeStatus().toString());
  return false;
}

void Reachability::bumpEpoch() {
  // When the 32-bit epoch wraps, stale stamps from 2^32 queries ago
  // would alias the new epoch; reset them all once and restart from 1.
  if (++Epoch == 0) {
    std::fill(Stamp.begin(), Stamp.end(), 0);
    Epoch = 1;
  }
}

template <typename FnT>
void Reachability::forEachReachable(NodeId Start, FnT Fn) {
  bumpEpoch();
  Stack.clear();
  Stack.push_back(Start);
  Stamp[Start.index()] = Epoch;
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    ++Visited;
    if (!Fn(N))
      return;
    for (NodeId S : G.succs(N)) {
      if (Stamp[S.index()] == Epoch)
        continue;
      Stamp[S.index()] = Epoch;
      Stack.push_back(S);
    }
  }
}

bool Reachability::isLabelIn(ExprId E, LabelId L) {
  if (!usable())
    return false;
  NodeId Start = G.lookupExprNode(E);
  if (!Start.isValid())
    return false;
  bool Found = false;
  forEachReachable(Start, [&](NodeId N) {
    if (G.labelOf(N) == L) {
      Found = true;
      return false; // stop the search
    }
    return true;
  });
  return Found;
}

DenseBitset Reachability::labelsOfNode(NodeId N) {
  DenseBitset Out(M.numLabels());
  if (!usable())
    return Out;
  forEachReachable(N, [&](NodeId R) {
    if (LabelId L = G.labelOf(R); L.isValid())
      Out.insert(L.index());
    return true;
  });
  return Out;
}

DenseBitset Reachability::labelsOf(ExprId E) {
  if (!usable())
    return DenseBitset(M.numLabels());
  NodeId Start = G.lookupExprNode(E);
  if (!Start.isValid())
    return DenseBitset(M.numLabels());
  return labelsOfNode(Start);
}

DenseBitset Reachability::labelsOfVar(VarId V) {
  if (!usable())
    return DenseBitset(M.numLabels());
  NodeId Start = G.lookupVarNode(V);
  if (!Start.isValid())
    return DenseBitset(M.numLabels());
  return labelsOfNode(Start);
}

std::vector<ExprId> Reachability::occurrencesOf(LabelId L) {
  std::vector<ExprId> Out;
  if (!usable())
    return Out;
  // Polyvariant instantiations carry labels on separate `Label` nodes, so
  // the reverse search starts from both.
  bumpEpoch();
  Stack.clear();
  for (NodeId Root : {G.lookupExprNode(M.lamOfLabel(L)),
                      G.lookupLabelNode(L)}) {
    if (!Root.isValid())
      continue;
    Stack.push_back(Root);
    Stamp[Root.index()] = Epoch;
  }
  if (Stack.empty())
    return Out;
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    ++Visited;
    for (NodeId P : G.preds(N)) {
      if (Stamp[P.index()] == Epoch)
        continue;
      Stamp[P.index()] = Epoch;
      Stack.push_back(P);
    }
  }

  // A congruence summary node may stand for many occurrences, so map
  // expressions to their canonical nodes rather than the reverse.
  for (uint32_t I = 0, E = M.numExprs(); I != E; ++I) {
    NodeId N = G.lookupExprNode(ExprId(I));
    if (N.isValid() && Stamp[N.index()] == Epoch)
      Out.push_back(ExprId(I));
  }
  return Out;
}

std::vector<DenseBitset> Reachability::allLabelSets(bool UseScc) {
  std::vector<DenseBitset> Out(M.numExprs(), DenseBitset(M.numLabels()));
  if (!usable())
    return Out;

  if (!UseScc) {
    // Repeated Algorithm 2, memoized per canonical node (congruence
    // summaries stand for many occurrences).
    std::vector<DenseBitset> PerNode(G.numNodes());
    std::vector<bool> Done(G.numNodes(), false);
    for (uint32_t I = 0, E = M.numExprs(); I != E; ++I) {
      NodeId N = G.lookupExprNode(ExprId(I));
      if (!N.isValid())
        continue;
      if (!Done[N.index()]) {
        PerNode[N.index()] = labelsOfNode(N);
        Done[N.index()] = true;
      }
      Out[I] = PerNode[N.index()];
    }
    return Out;
  }

  // SCC condensation (iterative Tarjan, see Condensation.cpp), then one
  // bottom-up union pass over the DAG.  Component ids are in completion
  // order, so ascending id order sees all successors of a component
  // finalized before the component itself.
  uint32_t NumNodes = G.numNodes();
  Condensation C(G);
  Visited += NumNodes; // the condensation touches every node once
  std::vector<std::vector<uint32_t>> NodesOfScc(C.numSccs());
  for (uint32_t N = 0; N != NumNodes; ++N)
    NodesOfScc[C.sccOf(N)].push_back(N);
  std::vector<DenseBitset> SccLabels(C.numSccs(), DenseBitset(M.numLabels()));
  for (uint32_t Scc = 0; Scc != C.numSccs(); ++Scc) {
    DenseBitset &Set = SccLabels[Scc];
    for (uint32_t N : NodesOfScc[Scc]) {
      if (LabelId L = G.labelOf(NodeId(N)); L.isValid())
        Set.insert(L.index());
      for (NodeId S : G.succs(NodeId(N)))
        if (C.sccOf(S.index()) != Scc)
          Set.unionWith(SccLabels[C.sccOf(S.index())]);
    }
  }

  for (uint32_t I = 0, E = M.numExprs(); I != E; ++I) {
    NodeId N = G.lookupExprNode(ExprId(I));
    if (N.isValid())
      Out[I] = SccLabels[C.sccOf(N.index())];
  }
  return Out;
}
