//===-- core/Condensation.h - SCC condensation of the graph -----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly-connected-component condensation of a query graph, shared by
/// `Reachability::allLabelSets` (over the intrusive adjacency) and
/// `FrozenGraph` (over the compacted CSR arrays, cached across queries).
///
/// The computation is one iterative Tarjan pass.  Component ids are
/// assigned in *completion* order, which gives the invariant every
/// consumer relies on: every SCC reachable from component `C` has a
/// smaller id than `C`, so a single ascending-id sweep sees all
/// successors of a component finalized before the component itself
/// (reverse topological order of the condensed DAG).
///
/// The node -> component map may be *adopted* instead of computed: a
/// persisted snapshot (src/snapshot/) stores the map verbatim, and the
/// mmap-backed `FrozenGraph` view wraps the mapped array without copying
/// it, so warm loads skip the Tarjan pass entirely.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_CORE_CONDENSATION_H
#define STCFA_CORE_CONDENSATION_H

#include <cstdint>
#include <span>
#include <vector>

namespace stcfa {

class SubtransitiveGraph;

/// The SCC partition of a directed graph over dense `uint32_t` node ids.
class Condensation {
public:
  /// Condenses the forward CSR `(Offsets, Targets)`: the successors of
  /// node `N` are `Targets[Offsets[N] .. Offsets[N + 1])`.
  Condensation(uint32_t NumNodes, std::span<const uint32_t> Offsets,
               std::span<const uint32_t> Targets);

  /// Condenses a closed subtransitive graph's intrusive adjacency.
  explicit Condensation(const SubtransitiveGraph &G);

  /// Adopts a precomputed node -> component map (a snapshot section)
  /// without copying; \p Map must outlive this object and satisfy the
  /// reverse-topological id invariant above.
  Condensation(std::span<const uint32_t> Map, uint32_t NumSccs)
      : SccOf(Map), NumSccs(NumSccs) {}

  uint32_t numNodes() const { return static_cast<uint32_t>(SccOf.size()); }
  uint32_t numSccs() const { return NumSccs; }

  /// The component of node \p N.  Ids are in reverse topological order:
  /// everything reachable from a component has a strictly smaller id.
  uint32_t sccOf(uint32_t N) const { return SccOf[N]; }

  /// The full node -> component map.
  std::span<const uint32_t> map() const { return SccOf; }

private:
  /// Backing storage when the map is computed here; empty when adopted.
  std::vector<uint32_t> Owned;
  /// The map itself: views `Owned` or an external (mmap-backed) array.
  std::span<const uint32_t> SccOf;
  uint32_t NumSccs = 0;
};

} // namespace stcfa

#endif // STCFA_CORE_CONDENSATION_H
