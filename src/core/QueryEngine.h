//===-- core/QueryEngine.h - Parallel batched CFA queries -------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-path query engine: answers the Section 2 query problems
/// over a `FrozenGraph` CSR snapshot, bit-for-bit equal to
/// `Reachability` over the mutable graph but without pointer chasing,
/// and with batched entry points sharded across a fixed `ThreadPool`.
///
/// Concurrency model: the CSR snapshot is read-only, so workers need no
/// locks — each worker lane owns a private epoch-stamped visit vector
/// and DFS stack (`Scratch`), and batched results land in disjoint,
/// pre-sized output slots.  Point queries run inline on the calling
/// thread using lane 0's scratch.  The engine itself is therefore *not*
/// re-entrant from multiple external threads; share the `FrozenGraph`,
/// not the engine.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_CORE_QUERYENGINE_H
#define STCFA_CORE_QUERYENGINE_H

#include "core/FrozenGraph.h"
#include "core/LabelSetKernel.h"
#include "support/Deadline.h"
#include "support/DenseBitset.h"
#include "support/Status.h"
#include "support/ThreadPool.h"

#include <memory>
#include <utility>
#include <vector>

namespace stcfa {

/// Resource controls for a governed batched query: a wall-clock deadline
/// and a cooperative cancellation token.  Default-constructed controls
/// never fire (infinite deadline, unarmed token).
struct BatchControl {
  Deadline D;
  CancellationToken Token;
};

/// Outcome of a governed batch.  On `DeadlineExceeded`/`Cancelled` the
/// result vector is *partial*: `Done[I]` says whether slot `I` holds a
/// real answer (unanswered slots are default-constructed — empty set,
/// false, or empty list).
struct BatchOutcome {
  Status S;
  /// Items answered before the governor stopped the batch.
  uint64_t Completed = 0;
  /// Per-item completion flags, `Done.size() == batch size`.
  std::vector<char> Done;
};

/// Parallel batched reachability queries over a frozen graph.
class QueryEngine {
public:
  /// \p Threads is the worker-lane count (1 = fully sequential, no
  /// threads spawned).
  explicit QueryEngine(const FrozenGraph &F, unsigned Threads = 1);
  ~QueryEngine();

  const FrozenGraph &frozen() const { return F; }
  unsigned threads() const { return NumThreads; }

  //===--- kernel dispatch -------------------------------------------------//
  //
  // Batches of at least `kernelThreshold()` items dispatch to the
  // word-parallel `LabelSetKernel`: one level-scheduled closure over the
  // condensation DAG is amortised across the whole batch instead of B
  // independent BFS walks.  The kernel is built lazily on first eligible
  // batch (sharing this engine's thread pool) and cached; point queries
  // never touch it.  An aborted kernel run (injected fault, deadline)
  // falls back to the BFS path transparently.

  /// Default batch size above which batches use the kernel.
  static constexpr size_t DefaultKernelThreshold = 16;

  /// Current dispatch threshold; 0 disables the kernel entirely.
  size_t kernelThreshold() const { return KernelThreshold; }
  void setKernelThreshold(size_t T) { KernelThreshold = T; }

  /// Level-merge threshold handed to the lazily-built kernel
  /// (`LabelSetKernel::setChunkRows`); takes effect only if set before
  /// the first eligible batch builds the kernel.
  uint32_t kernelChunkRows() const { return KernelChunkRows; }
  void setKernelChunkRows(uint32_t Rows) { KernelChunkRows = Rows; }

  /// The cached kernel, or null if no eligible batch has run yet.
  const LabelSetKernel *kernel() const { return Kern.get(); }

  /// Installs an externally built kernel — a snapshot's persisted row
  /// matrix — as the batched-query backend.  \p K must be `complete()`
  /// and built over this engine's frozen graph; eligible batches then
  /// dispatch to it without ever running the closure.
  void adoptKernel(std::unique_ptr<LabelSetKernel> K);

  //===--- point queries (calling thread, lane 0) -------------------------//

  /// Algorithm 1: is the abstraction labelled \p L a possible value of
  /// occurrence \p E?
  bool isLabelIn(ExprId E, LabelId L);

  /// Algorithm 2: all abstraction labels reachable from \p E.
  DenseBitset labelsOf(ExprId E);

  /// All labels reachable from the binder \p V.
  DenseBitset labelsOfVar(VarId V);

  /// All labels reachable from graph node \p N.
  DenseBitset labelsOfNode(uint32_t N);

  /// All expression occurrences whose label set contains \p L.
  std::vector<ExprId> occurrencesOf(LabelId L);

  //===--- batched queries (sharded across the pool) ----------------------//

  /// `labelsOf` for every query in \p Es, in order.
  std::vector<DenseBitset> labelsOfBatch(const std::vector<ExprId> &Es);

  /// `isLabelIn` for every (occurrence, label) pair, in order.
  std::vector<char>
  isLabelInBatch(const std::vector<std::pair<ExprId, LabelId>> &Qs);

  /// `occurrencesOf` for every label in \p Ls, in order.
  std::vector<std::vector<ExprId>>
  occurrencesOfBatch(const std::vector<LabelId> &Ls);

  //===--- governed batched queries ----------------------------------------//
  //
  // Same sharding as above, but every lane polls the deadline and
  // cancellation token *between* items — individual DFS traversals stay
  // check-free, so overrun is bounded by one query per lane.  A stopped
  // batch returns partial results with \p Out explaining why; the
  // ungoverned overloads above compile to the same hot loops with zero
  // polling.

  /// Governed `labelsOfBatch`: unanswered slots are empty sets.
  std::vector<DenseBitset> labelsOfBatch(const std::vector<ExprId> &Es,
                                         const BatchControl &C,
                                         BatchOutcome &Out);

  /// Governed `isLabelInBatch`: unanswered slots are 0.
  std::vector<char>
  isLabelInBatch(const std::vector<std::pair<ExprId, LabelId>> &Qs,
                 const BatchControl &C, BatchOutcome &Out);

  /// Governed `occurrencesOfBatch`: unanswered slots are empty lists.
  std::vector<std::vector<ExprId>>
  occurrencesOfBatch(const std::vector<LabelId> &Ls, const BatchControl &C,
                     BatchOutcome &Out);

  /// Complete CFA information, one label set per occurrence.  With
  /// \p UseScc the frozen graph's cached condensation answers repeat
  /// calls in output-copy time; without it, per-node DFS memoization is
  /// sharded across the pool.
  std::vector<DenseBitset> allLabelSets(bool UseScc = false);

  /// Nodes touched by queries so far, summed over all lanes.
  uint64_t nodesVisited() const;

private:
  /// Per-lane DFS state: epoch-stamped visit marks (O(1) reset between
  /// queries, zeroed on epoch wrap) and an explicit stack.
  ///
  /// Layout invariant: `Lanes` is a contiguous array with one Scratch
  /// per worker lane, and every lane hammers its own `Epoch`/`Visited`
  /// and vector headers on each DFS step.  `alignas(64)` rounds
  /// `sizeof(Scratch)` up to whole cache lines, so `Lanes[K]` and
  /// `Lanes[K + 1]` can never share a 64-byte line — without it, lane
  /// K's `Visited` stores would false-share with lane K+1's `Stamp`
  /// header loads and serialise the supposedly independent lanes.
  struct alignas(64) Scratch {
    std::vector<uint32_t> Stamp;
    uint32_t Epoch = 0;
    std::vector<uint32_t> Stack;
    uint64_t Visited = 0;
  };

  void bumpEpoch(Scratch &S);
  /// True when a batch of \p BatchSize should dispatch to the kernel.
  bool kernelEligible(size_t BatchSize) const {
    return KernelThreshold != 0 && BatchSize >= KernelThreshold &&
           F.numNodes() != 0;
  }
  /// The lazily-built kernel (shares this engine's pool).
  LabelSetKernel &kernelRef();
  /// Runs the kernel for an eligible batch under the given controls
  /// (defaults never fire).  Counts the dispatch; on a governed kernel
  /// abort, counts the fallback, records the cause, and returns false so
  /// the caller takes the per-query BFS path.
  bool dispatchKernel(size_t BatchSize, const Deadline &D = Deadline(),
                      const CancellationToken &Token = CancellationToken());
  void occurrencesFromKernel(const LabelSetKernel &K, LabelId L,
                             std::vector<ExprId> &Out);
  /// Shards \p N items across the lanes, invoking `Item(Scratch&, I)`
  /// per item with a governor poll before each one.
  template <typename ItemFn>
  void runGoverned(size_t N, const BatchControl &C, BatchOutcome &Out,
                   ItemFn Item);
  template <typename FnT>
  void forEachReachable(Scratch &S, uint32_t Start, FnT Fn);
  DenseBitset labelsFromNode(Scratch &S, uint32_t Start);
  bool labelReachableFrom(Scratch &S, uint32_t Start, uint32_t Label);
  void markOccurrences(Scratch &S, LabelId L, std::vector<ExprId> &Out);

  const FrozenGraph &F;
  unsigned NumThreads;
  std::unique_ptr<ThreadPool> Pool; // null when NumThreads == 1
  std::vector<Scratch> Lanes;       // one per worker lane
  size_t KernelThreshold = DefaultKernelThreshold;
  uint32_t KernelChunkRows = LabelSetKernel::DefaultChunkRows;
  std::unique_ptr<LabelSetKernel> Kern; // built on first eligible batch
};

} // namespace stcfa

#endif // STCFA_CORE_QUERYENGINE_H
