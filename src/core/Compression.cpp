//===-- core/Compression.cpp - Chain-compressed query graph ---------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Compression.h"

using namespace stcfa;

CompressedGraph::CompressedGraph(const SubtransitiveGraph &G)
    : M(G.module()) {
  uint32_t N = G.numNodes();
  Rep.assign(N, NodeId::invalid());
  LabelAt.assign(N, LabelId::invalid());

  // A node is kept when it carries a label or does not have exactly one
  // successor; label-free one-successor nodes forward to their successor's
  // representative.  Chains are resolved iteratively with an explicit
  // stack; a cycle of skippable nodes keeps its entry node.
  auto outDegreeOne = [&](NodeId Node, NodeId &OnlySucc) {
    auto Range = G.succs(Node);
    auto It = Range.begin();
    if (It == Range.end())
      return false;
    OnlySucc = *It;
    ++It;
    return It == Range.end();
  };

  std::vector<uint8_t> State(N, 0); // 0 = unvisited, 1 = in progress
  std::vector<NodeId> Chain;
  for (uint32_t I = 0; I != N; ++I) {
    if (Rep[I].isValid())
      continue;
    Chain.clear();
    NodeId Cur(I);
    NodeId Target = NodeId::invalid();
    while (true) {
      if (Rep[Cur.index()].isValid()) {
        Target = Rep[Cur.index()];
        break;
      }
      if (State[Cur.index()] == 1) {
        // Skippable cycle: keep the node where we re-entered.
        Target = Cur;
        break;
      }
      NodeId OnlySucc = NodeId::invalid();
      bool Skippable = !G.labelOf(Cur).isValid() &&
                       outDegreeOne(Cur, OnlySucc) && OnlySucc != Cur;
      if (!Skippable) {
        Target = Cur;
        break;
      }
      State[Cur.index()] = 1;
      Chain.push_back(Cur);
      Cur = OnlySucc;
    }
    Rep[Target.index()] = Target;
    for (NodeId C : Chain)
      Rep[C.index()] = Target;
  }

  // Condensed adjacency over kept nodes, deduplicated per source.
  Succs.resize(N);
  std::vector<uint32_t> SeenStamp(N, 0);
  uint32_t Stamp2 = 0;
  for (uint32_t I = 0; I != N; ++I) {
    if (Rep[I] != NodeId(I))
      continue;
    ++NumKept;
    LabelAt[I] = G.labelOf(NodeId(I));
    ++Stamp2;
    for (NodeId S : G.succs(NodeId(I))) {
      NodeId RS = Rep[S.index()];
      if (RS == NodeId(I) || SeenStamp[RS.index()] == Stamp2)
        continue;
      SeenStamp[RS.index()] = Stamp2;
      Succs[I].push_back(RS);
    }
  }

  ExprRep.assign(M.numExprs(), NodeId::invalid());
  for (uint32_t I = 0; I != M.numExprs(); ++I)
    if (NodeId E = G.lookupExprNode(ExprId(I)); E.isValid())
      ExprRep[I] = Rep[E.index()];
  VarRep.assign(M.numVars(), NodeId::invalid());
  for (uint32_t I = 0; I != M.numVars(); ++I)
    if (NodeId V = G.lookupVarNode(VarId(I)); V.isValid())
      VarRep[I] = Rep[V.index()];
  Stamp.assign(N, 0);
}

DenseBitset CompressedGraph::labelsFrom(NodeId Kept) {
  DenseBitset Out(M.numLabels());
  if (!Kept.isValid())
    return Out;
  ++Epoch;
  std::vector<NodeId> Stack{Kept};
  Stamp[Kept.index()] = Epoch;
  while (!Stack.empty()) {
    NodeId Node = Stack.back();
    Stack.pop_back();
    ++Visited;
    if (LabelId L = LabelAt[Node.index()]; L.isValid())
      Out.insert(L.index());
    for (NodeId S : Succs[Node.index()]) {
      if (Stamp[S.index()] == Epoch)
        continue;
      Stamp[S.index()] = Epoch;
      Stack.push_back(S);
    }
  }
  return Out;
}

DenseBitset CompressedGraph::labelsOf(ExprId E) {
  return labelsFrom(ExprRep[E.index()]);
}

DenseBitset CompressedGraph::labelsOfVar(VarId V) {
  return labelsFrom(VarRep[V.index()]);
}
