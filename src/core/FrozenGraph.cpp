//===-- core/FrozenGraph.cpp - Immutable CSR query snapshot ---------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/FrozenGraph.h"

#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>

using namespace stcfa;

FrozenGraph::FrozenGraph(const SubtransitiveGraph &G)
    : FrozenGraph(G, Deadline::infinite()) {
  assert(G.closed() && "freeze only after close()");
  assert(!G.aborted() && "an aborted graph must not be frozen");
}

FrozenGraph::FrozenGraph(const SubtransitiveGraph &Src, const Deadline &D)
    : G(&Src), M(&Src.module()) {
  NumExprs = M->numExprs();
  NumVars = M->numVars();
  NumLabels = M->numLabels();
  FreezeStatus = init(D);
  if (!FreezeStatus.isOk())
    resetToInert();
}

std::unique_ptr<FrozenGraph> FrozenGraph::freeze(const SubtransitiveGraph &G,
                                                 Status &Out,
                                                 const Deadline &D) {
  auto F = std::unique_ptr<FrozenGraph>(new FrozenGraph(G, D));
  Out = F->status();
  if (!Out.isOk())
    F.reset();
  return F;
}

std::unique_ptr<FrozenGraph> FrozenGraph::fromTables(const Tables &T) {
  auto F = std::unique_ptr<FrozenGraph>(new FrozenGraph());
  F->NumNodes = T.NumNodes;
  F->NumExprs = T.NumExprs;
  F->NumVars = T.NumVars;
  F->NumLabels = T.NumLabels;
  F->OutOffsets = T.OutOffsets;
  F->OutTargets = T.OutTargets;
  F->InOffsets = T.InOffsets;
  F->InTargets = T.InTargets;
  F->LabelAt = T.LabelAt;
  F->Op = T.Ops;
  F->NodeOfExpr = T.NodeOfExpr;
  F->NodeOfVar = T.NodeOfVar;
  F->LabelRoots = T.LabelRoots;
  F->RanOf = T.RanOf;
  // Adopt the persisted condensation so warm loads never pay the Tarjan
  // pass; consumers hit the usual `condensation()` cache path.
  if (T.SccOf.size() == T.NumNodes)
    std::call_once(F->CondOnce, [&F, &T] {
      F->Cond = std::make_unique<Condensation>(T.SccOf, T.NumSccs);
    });
  return F;
}

FrozenGraph::Tables FrozenGraph::tables() const {
  Tables T;
  T.NumNodes = NumNodes;
  T.NumExprs = NumExprs;
  T.NumVars = NumVars;
  T.NumLabels = NumLabels;
  T.OutOffsets = OutOffsets;
  T.OutTargets = OutTargets;
  T.InOffsets = InOffsets;
  T.InTargets = InTargets;
  T.LabelAt = LabelAt;
  T.Ops = Op;
  T.NodeOfExpr = NodeOfExpr;
  T.NodeOfVar = NodeOfVar;
  T.LabelRoots = LabelRoots;
  T.RanOf = RanOf;
  const Condensation &C = condensation();
  T.SccOf = C.map();
  T.NumSccs = C.numSccs();
  return T;
}

/// Drops every partially-built array and leaves the snapshot empty but
/// well-defined: zero nodes, every occurrence/binder/label lookup
/// answers "no node", so downstream queries are empty rather than UB.
void FrozenGraph::resetToInert() {
  NumNodes = 0;
  OutOffsetsStore.assign(1, 0);
  InOffsetsStore.assign(1, 0);
  OutTargetsStore.clear();
  InTargetsStore.clear();
  LabelAtStore.clear();
  OpStore.clear();
  NodeOfExprStore.assign(NumExprs, None);
  NodeOfVarStore.assign(NumVars, None);
  LabelRootsStore.assign(2 * size_t(NumLabels), None);
  RanOfStore.clear();
  OutOffsets = OutOffsetsStore;
  OutTargets = OutTargetsStore;
  InOffsets = InOffsetsStore;
  InTargets = InTargetsStore;
  LabelAt = LabelAtStore;
  Op = OpStore;
  NodeOfExpr = NodeOfExprStore;
  NodeOfVar = NodeOfVarStore;
  LabelRoots = LabelRootsStore;
  RanOf = RanOfStore;
}

Status FrozenGraph::init(const Deadline &D) {
  Span FreezeSpan("freeze");
  static Counter &Freezes = counter("freeze.count");
  static Counter &FreezeAborts = counter("freeze.aborts");
  static Histogram &Millis =
      histogram("freeze.millis", latencyBucketsMillis());
  Freezes.inc();
  auto fail = [&](Status S) {
    FreezeAborts.inc();
    FreezeSpan.arg("status", statusCodeName(S.code()));
    return S;
  };
  // An aborted close leaves the graph un-closed too, so test abortion
  // first: its diagnostic (which carries the close status) is the one the
  // caller needs.
  if (G->aborted())
    return fail(Status::failedPrecondition(
        "an aborted graph must not be frozen: " + G->closeStatus().toString()));
  if (!G->closed())
    return fail(Status::failedPrecondition("freeze before close()"));
  NumNodes = G->numNodes();
  Timer T;

  // Governor checkpoint between compaction phases: each phase is one
  // linear pass, so this bounds overrun at one pass, and the hot loops
  // themselves stay check-free.
  auto checkpoint = [&]() -> Status {
    if (faultFires(fault::FreezeAlloc))
      return Status::outOfMemory("CSR array allocation failed");
    if (D.expired() || faultFires(fault::FreezeDeadline))
      return Status::deadlineExceeded("freeze exceeded its deadline");
    return Status::ok();
  };
  if (Status S = checkpoint(); !S.isOk())
    return fail(std::move(S));

  // Forward CSR: count, prefix-sum, fill.  Each row is sorted ascending
  // — queries are order-insensitive, and monotone targets keep the DFS
  // stamp accesses local.
  OutOffsetsStore.assign(NumNodes + 1, 0);
  for (uint32_t N = 0; N != NumNodes; ++N)
    for (NodeId S : G->succs(NodeId(N))) {
      (void)S;
      ++OutOffsetsStore[N + 1];
    }
  for (uint32_t N = 0; N != NumNodes; ++N)
    OutOffsetsStore[N + 1] += OutOffsetsStore[N];
  OutTargetsStore.resize(OutOffsetsStore[NumNodes]);
  {
    std::vector<uint32_t> Fill(OutOffsetsStore.begin(),
                               OutOffsetsStore.end() - 1);
    for (uint32_t N = 0; N != NumNodes; ++N)
      for (NodeId S : G->succs(NodeId(N)))
        OutTargetsStore[Fill[N]++] = S.index();
  }
  for (uint32_t N = 0; N != NumNodes; ++N)
    std::sort(OutTargetsStore.begin() + OutOffsetsStore[N],
              OutTargetsStore.begin() + OutOffsetsStore[N + 1]);
  if (Status S = checkpoint(); !S.isOk())
    return fail(std::move(S));

  // Reverse CSR, derived from the forward arrays.
  InOffsetsStore.assign(NumNodes + 1, 0);
  for (uint32_t Target : OutTargetsStore)
    ++InOffsetsStore[Target + 1];
  for (uint32_t N = 0; N != NumNodes; ++N)
    InOffsetsStore[N + 1] += InOffsetsStore[N];
  InTargetsStore.resize(OutTargetsStore.size());
  {
    std::vector<uint32_t> Fill(InOffsetsStore.begin(),
                               InOffsetsStore.end() - 1);
    for (uint32_t N = 0; N != NumNodes; ++N)
      for (uint32_t I = OutOffsetsStore[N], E = OutOffsetsStore[N + 1]; I != E;
           ++I)
        InTargetsStore[Fill[OutTargetsStore[I]]++] = N;
  }
  if (Status S = checkpoint(); !S.isOk())
    return fail(std::move(S));

  // Labels and ops hoisted into flat arrays.
  LabelAtStore.resize(NumNodes);
  OpStore.resize(NumNodes);
  for (uint32_t N = 0; N != NumNodes; ++N) {
    LabelId L = G->labelOf(NodeId(N));
    LabelAtStore[N] = L.isValid() ? L.index() : None;
    OpStore[N] = G->op(NodeId(N));
  }

  // Flat occurrence/binder -> node maps and per-label reverse roots.
  NodeOfExprStore.resize(NumExprs);
  for (uint32_t I = 0; I != NumExprs; ++I) {
    NodeId N = G->lookupExprNode(ExprId(I));
    NodeOfExprStore[I] = N.isValid() ? N.index() : None;
  }
  NodeOfVarStore.resize(NumVars);
  for (uint32_t I = 0; I != NumVars; ++I) {
    NodeId N = G->lookupVarNode(VarId(I));
    NodeOfVarStore[I] = N.isValid() ? N.index() : None;
  }
  LabelRootsStore.assign(2 * size_t(NumLabels), None);
  for (uint32_t L = 0; L != NumLabels; ++L) {
    NodeId Lam = G->lookupExprNode(M->lamOfLabel(LabelId(L)));
    NodeId Carrier = G->lookupLabelNode(LabelId(L));
    LabelRootsStore[2 * L] = Lam.isValid() ? Lam.index() : None;
    LabelRootsStore[2 * L + 1] = Carrier.isValid() ? Carrier.index() : None;
  }

  // Ran-port map hoisted flat: the effects analysis resolves
  // `ran(lambda-node)` per call site, and an mmap-backed view has no
  // source graph hash to consult, so the ports ride the snapshot.
  RanOfStore.resize(NumNodes);
  for (uint32_t N = 0; N != NumNodes; ++N) {
    NodeId R = G->lookupDerived(NodeOp::Ran, NodeId(N));
    RanOfStore[N] = R.isValid() && R.index() < NumNodes ? R.index() : None;
  }

  OutOffsets = OutOffsetsStore;
  OutTargets = OutTargetsStore;
  InOffsets = InOffsetsStore;
  InTargets = InTargetsStore;
  LabelAt = LabelAtStore;
  Op = OpStore;
  NodeOfExpr = NodeOfExprStore;
  NodeOfVar = NodeOfVarStore;
  LabelRoots = LabelRootsStore;
  RanOf = RanOfStore;

  FreezeMs = T.millis();
  Millis.observe(static_cast<uint64_t>(FreezeMs));
  FreezeSpan.arg("nodes", NumNodes);
  FreezeSpan.arg("edges", OutTargetsStore.size());
  FreezeSpan.arg("status", statusCodeName(StatusCode::Ok));
  return Status::ok();
}

uint32_t FrozenGraph::portOf(NodeOp PortOp, uint32_t Base, uint32_t Tag) const {
  // Ran ports ride the flat persisted table, so even mmap-backed views
  // (no source graph) answer them.
  if (PortOp == NodeOp::Ran && Tag == 0 && !RanOf.empty())
    return ranOf(Base);
  if (!G || Base >= NumNodes)
    return None;
  NodeId N = G->lookupDerived(PortOp, NodeId(Base), Tag);
  // Nodes the source grew after the freeze (incremental/polyvariant
  // additions) have no CSR rows here; treat them as absent.
  return N.isValid() && N.index() < NumNodes ? N.index() : None;
}

DenseBitset FrozenGraph::reachableFrom(std::span<const uint32_t> Roots,
                                       bool Reverse) const {
  DenseBitset Mark(NumNodes);
  std::vector<uint32_t> Stack;
  for (uint32_t R : Roots) {
    if (R != None && R < NumNodes && Mark.insert(R))
      Stack.push_back(R);
  }
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    for (uint32_t T : Reverse ? preds(N) : succs(N))
      if (Mark.insert(T))
        Stack.push_back(T);
  }
  return Mark;
}

void FrozenGraph::buildSccLabels() const {
  // One ascending-id sweep over the condensed DAG: SCC ids are in
  // completion order, so every successor component is finalized first.
  uint32_t NumSccs = Cond->numSccs();
  std::vector<std::vector<uint32_t>> NodesOfScc(NumSccs);
  for (uint32_t N = 0; N != NumNodes; ++N)
    NodesOfScc[Cond->sccOf(N)].push_back(N);
  SccLabels.assign(NumSccs, DenseBitset(NumLabels));
  for (uint32_t Scc = 0; Scc != NumSccs; ++Scc) {
    DenseBitset &Set = SccLabels[Scc];
    for (uint32_t N : NodesOfScc[Scc]) {
      if (LabelAt[N] != None)
        Set.insert(LabelAt[N]);
      for (uint32_t S : succs(N))
        if (Cond->sccOf(S) != Scc)
          Set.unionWith(SccLabels[Cond->sccOf(S)]);
    }
  }
}

const Condensation &FrozenGraph::condensation() const {
  // The Tarjan pass and the serial per-SCC label sets are cached under
  // *separate* once-flags: the label-set kernel wants the condensation
  // alone (it computes the label closure itself, in parallel), so it
  // must not pay for — or race with — the serial `sccLabelSets` sweep.
  std::call_once(CondOnce, [this] {
    Span CondSpan("condense");
    static Counter &Condensations = counter("condense.count");
    static Histogram &Millis =
        histogram("condense.millis", latencyBucketsMillis());
    Condensations.inc();
    Timer T;
    Cond = std::make_unique<Condensation>(NumNodes, OutOffsets, OutTargets);
    Millis.observe(static_cast<uint64_t>(T.millis()));
    CondSpan.arg("nodes", NumNodes);
    CondSpan.arg("sccs", Cond->numSccs());
  });
  return *Cond;
}

const std::vector<DenseBitset> &FrozenGraph::sccLabelSets() const {
  condensation();
  std::call_once(SccLabelsOnce, [this] { buildSccLabels(); });
  return SccLabels;
}
