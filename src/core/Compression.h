//===-- core/Compression.h - Chain-compressed query graph ------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The implementation improvement the paper's Section 10 proposes:
/// "taking advantage of the many nodes that have only one outgoing edge".
///
/// After the close phase, long label-free chains (variable hops,
/// `let`-spines, `ran`-ladders) dominate the graph.  `CompressedGraph`
/// collapses every label-free node with exactly one successor into that
/// successor's representative and rebuilds a condensed adjacency over the
/// kept nodes.  Reachability queries over the compressed graph return
/// exactly the same label sets, with proportionally fewer nodes visited.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_CORE_COMPRESSION_H
#define STCFA_CORE_COMPRESSION_H

#include "core/SubtransitiveGraph.h"
#include "support/DenseBitset.h"

#include <vector>

namespace stcfa {

/// A query-only condensation of a closed subtransitive graph.
class CompressedGraph {
public:
  explicit CompressedGraph(const SubtransitiveGraph &G);

  /// Labels reachable from occurrence \p E (same result as
  /// `Reachability::labelsOf`, fewer nodes visited).
  DenseBitset labelsOf(ExprId E);

  /// Labels reachable from binder \p V.
  DenseBitset labelsOfVar(VarId V);

  /// Nodes kept after compression.
  uint32_t numKeptNodes() const { return NumKept; }
  /// Nodes in the original graph (for the compression-ratio report).
  uint32_t numOriginalNodes() const {
    return static_cast<uint32_t>(Rep.size());
  }
  /// Nodes touched by queries so far.
  uint64_t nodesVisited() const { return Visited; }

private:
  DenseBitset labelsFrom(NodeId Original);

  const Module &M;
  /// original node -> representative kept node.
  std::vector<NodeId> Rep;
  /// kept-node adjacency (indexed by original id of the kept node).
  std::vector<std::vector<NodeId>> Succs;
  std::vector<LabelId> LabelAt;
  std::vector<NodeId> ExprRep;
  std::vector<NodeId> VarRep;
  std::vector<uint32_t> Stamp;
  uint32_t Epoch = 0;
  uint32_t NumKept = 0;
  uint64_t Visited = 0;
};

} // namespace stcfa

#endif // STCFA_CORE_COMPRESSION_H
