//===-- core/FrozenGraph.h - Immutable CSR query snapshot -------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A frozen, immutable snapshot of a closed `SubtransitiveGraph`,
/// compacted for query throughput: all CFA queries reduce to plain graph
/// reachability (Propositions 1/2), so the serving hot path is edge
/// iteration, and the intrusive linked-list edge pool of the mutable
/// graph pays one cache miss per edge.  The snapshot stores
///
///   * forward and reverse adjacency as CSR (`uint32_t` offset/target
///     arrays — contiguous, prefetch-friendly);
///   * abstraction labels hoisted into one flat per-node array (no
///     per-node `labelOf` dispatch on the query path);
///   * flat occurrence/binder -> node maps and per-label reverse-search
///     roots;
///   * an optional SCC condensation plus per-component label sets,
///     built once on first use and cached across queries.
///
/// Storage seam: every array accessor reads a `std::span` view.  A
/// snapshot frozen from a graph backs those views with its own vectors;
/// an mmap-backed view (`fromTables`, built by the snapshot loader in
/// src/snapshot/) points them straight into a read-only file mapping with
/// zero deserialization.  `QueryEngine`, the label-set kernel, and every
/// other query-side consumer work against either form unchanged; only
/// `module()`/`source()` (and the cold-path `portOf`) need the owning
/// pipeline — guard those behind `hasSource()`.
///
/// Freeze invariants: freeze only after `close()`, never after
/// `aborted()`.  The governed entry point is the `freeze()` factory,
/// which reports violations (and deadline expiry / injected faults mid
/// compaction) as a `Status`; the legacy constructor still asserts in
/// debug builds, and in release builds a precondition violation yields
/// an *empty, inert* snapshot — every lookup answers "no node", every
/// query is empty, and `status()` carries `FailedPrecondition` — rather
/// than undefined behaviour over a half-closed graph.  The snapshot
/// keeps a reference to the source graph (for cold-path lookups such as
/// `lookupDerived`) and to its `Module`; both must outlive it.  Edges
/// added to the source graph after freezing (the incremental/polyvariant
/// path) are *not* reflected — re-freeze instead.
///
/// Thread safety: after construction every accessor is `const` and
/// lock-free; the cached condensation is materialised under
/// `std::call_once`, so concurrent readers are safe (`QueryEngine` shards
/// batched queries over one shared snapshot).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_CORE_FROZENGRAPH_H
#define STCFA_CORE_FROZENGRAPH_H

#include "core/Condensation.h"
#include "core/SubtransitiveGraph.h"
#include "support/DenseBitset.h"
#include "support/Deadline.h"
#include "support/Status.h"

#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace stcfa {

/// Immutable CSR compaction of a closed subtransitive graph.
class FrozenGraph {
public:
  /// Node/label sentinel: "no such node / no label here".
  static constexpr uint32_t None = ~0u;

  /// The complete flat-table contents of a snapshot, as spans: the seam
  /// between an owned snapshot (spans into its vectors) and an
  /// mmap-backed view (spans into a read-only mapping).  `tables()`
  /// exports them (the snapshot writer's input) and `fromTables` adopts
  /// them (the snapshot loader's output).
  struct Tables {
    uint32_t NumNodes = 0, NumExprs = 0, NumVars = 0, NumLabels = 0;
    std::span<const uint32_t> OutOffsets, OutTargets, InOffsets, InTargets;
    std::span<const uint32_t> LabelAt, NodeOfExpr, NodeOfVar, LabelRoots;
    /// Per-node `ran` port (`RanOf.size() == NumNodes`, entries `None`
    /// where no ran node was materialised).
    std::span<const uint32_t> RanOf;
    std::span<const NodeOp> Ops;
    /// The Tarjan condensation map (`SccOf.size() == NumNodes`).
    std::span<const uint32_t> SccOf;
    uint32_t NumSccs = 0;
  };

  /// Freezes \p G.  Requires `G.closed() && !G.aborted()` (debug
  /// assert); in release builds a violation produces an empty, inert
  /// snapshot with `status()` set instead of UB.
  explicit FrozenGraph(const SubtransitiveGraph &G);

  /// Governed freeze: like the constructor, but a wall-clock deadline
  /// covers the compaction and nothing is asserted — precondition
  /// violations, deadline expiry, and injected faults all land in
  /// `status()` with the snapshot left empty and inert.
  FrozenGraph(const SubtransitiveGraph &G, const Deadline &D);

  /// Factory for the governed pipeline: returns the snapshot, or null
  /// with \p Out explaining why (`FailedPrecondition` for an unclosed or
  /// aborted graph, `DeadlineExceeded`, or an injected fault's code).
  static std::unique_ptr<FrozenGraph> freeze(const SubtransitiveGraph &G,
                                             Status &Out,
                                             const Deadline &D = {});

  /// Wraps externally owned tables — the snapshot loader's mmap — with
  /// zero copying; \p T's storage must outlive the returned snapshot.
  /// The view has no source graph or module (`hasSource()` is false):
  /// every query-side accessor works, the condensation is adopted from
  /// `T.SccOf` instead of recomputed, and `portOf` answers `None`.
  static std::unique_ptr<FrozenGraph> fromTables(const Tables &T);

  /// This snapshot's tables as spans (the snapshot writer's input).
  /// Materialises the cached condensation if it has not been forced yet.
  Tables tables() const;

  /// `Ok` for a usable snapshot; the failure reason for an inert one.
  const Status &status() const { return FreezeStatus; }

  /// True when this snapshot was frozen from a live pipeline, so
  /// `module()` / `source()` may be called; false for an mmap-backed
  /// view, which carries only the flat tables.
  bool hasSource() const { return G != nullptr; }

  /// Severs the back-references into the live pipeline, turning this
  /// snapshot into a self-contained view (like `fromTables`, but with
  /// owned storage): `hasSource()` becomes false, `portOf` falls back to
  /// the flat `ran` table, and the graph/module may then be mutated or
  /// destroyed freely.  The delta layer detaches every epoch snapshot so
  /// in-flight queries never race the next edit's graph surgery.
  void detachSource() {
    G = nullptr;
    M = nullptr;
  }

  const Module &module() const {
    assert(M && "mmap-backed view has no module");
    return *M;
  }
  const SubtransitiveGraph &source() const {
    assert(G && "mmap-backed view has no source graph");
    return *G;
  }

  uint32_t numNodes() const { return NumNodes; }
  uint64_t numEdges() const { return OutTargets.size(); }
  /// Program-shape counts, captured at freeze time (or from the snapshot
  /// meta section) so query-side consumers never need the `Module`.
  uint32_t numExprs() const { return NumExprs; }
  uint32_t numVars() const { return NumVars; }
  uint32_t numLabels() const { return NumLabels; }

  /// Successors of node \p N (CSR row).
  std::span<const uint32_t> succs(uint32_t N) const {
    return {OutTargets.data() + OutOffsets[N],
            OutTargets.data() + OutOffsets[N + 1]};
  }
  /// Predecessors of node \p N (reverse CSR row).
  std::span<const uint32_t> preds(uint32_t N) const {
    return {InTargets.data() + InOffsets[N],
            InTargets.data() + InOffsets[N + 1]};
  }

  /// Raw CSR arrays, for the tightest query loops (the span accessors
  /// cost two offset loads per row; hot DFS loops hoist these once).
  const uint32_t *outOffsets() const { return OutOffsets.data(); }
  const uint32_t *outTargets() const { return OutTargets.data(); }
  const uint32_t *inOffsets() const { return InOffsets.data(); }
  const uint32_t *labelArray() const { return LabelAt.data(); }

  /// The abstraction label carried by node \p N, or `None`.
  uint32_t labelAt(uint32_t N) const { return LabelAt[N]; }
  NodeOp op(uint32_t N) const { return Op[N]; }

  /// The canonical node of occurrence \p E, or `None`.
  uint32_t nodeOfExpr(ExprId E) const { return NodeOfExpr[E.index()]; }
  /// The canonical node of binder \p V, or `None`.
  uint32_t nodeOfVar(VarId V) const { return NodeOfVar[V.index()]; }

  /// Reverse-search roots for label \p L: the lambda's expression node
  /// and the polyvariant label-carrier node (either may be `None`).
  std::pair<uint32_t, uint32_t> labelRoots(LabelId L) const {
    return {LabelRoots[2 * L.index()], LabelRoots[2 * L.index() + 1]};
  }

  //===--- port reachability ----------------------------------------------//

  /// The derived *port* node hanging off \p Base — `dom(Base)`,
  /// `ran(Base)`, `field_Tag(Base)`, or `refcell(Base)` — or `None` when
  /// the port was never materialised.  Cold path (one hash lookup in the
  /// source graph); node indices in the snapshot equal source indices.
  /// An mmap-backed view has no source graph and always answers `None`
  /// — except for `ran` ports, which `ranOf` serves from a flat table.
  uint32_t portOf(NodeOp PortOp, uint32_t Base, uint32_t Tag = 0) const;

  /// The `ran(N)` port node of \p N, or `None`.  Unlike `portOf`, this
  /// reads a flat array persisted at freeze time, so it works on
  /// mmap-backed views too (the effects-analysis path over snapshots).
  uint32_t ranOf(uint32_t N) const {
    return N < RanOf.size() ? RanOf[N] : None;
  }

  /// Multi-source reachability over the CSR rows, the primitive under
  /// every port query: following successor edges (`Reverse` false) from a
  /// node reaches exactly the producers of the values that may flow to it
  /// (Proposition 1); following predecessor edges (`Reverse` true) from a
  /// producer reaches every node its value may flow to (Proposition 2).
  /// Roots equal to `None` are skipped.  Returns one mark bit per node.
  DenseBitset reachableFrom(std::span<const uint32_t> Roots,
                            bool Reverse = false) const;

  /// Milliseconds spent compacting (reported under `--stats`).
  double freezeMillis() const { return FreezeMs; }

  //===--- cached condensation --------------------------------------------//

  /// The SCC condensation, built on first use (thread-safe) and cached
  /// across queries; an mmap-backed view adopts it from the snapshot
  /// instead of recomputing.
  const Condensation &condensation() const;

  /// Per-component label sets in reverse topological order, cached with
  /// the condensation: `sccLabelSets()[condensation().sccOf(N)]` is the
  /// full label set reachable from node `N`.
  const std::vector<DenseBitset> &sccLabelSets() const;

private:
  FrozenGraph() = default; // the `fromTables` view path

  Status init(const Deadline &D);
  void resetToInert();
  void buildSccLabels() const;

  const SubtransitiveGraph *G = nullptr; // null for an mmap-backed view
  const Module *M = nullptr;             // null for an mmap-backed view
  uint32_t NumNodes = 0, NumExprs = 0, NumVars = 0, NumLabels = 0;
  Status FreezeStatus;

  // Owned backing for the freeze path; empty for an mmap-backed view.
  std::vector<uint32_t> OutOffsetsStore, OutTargetsStore;
  std::vector<uint32_t> InOffsetsStore, InTargetsStore;
  std::vector<uint32_t> LabelAtStore;
  std::vector<NodeOp> OpStore;
  std::vector<uint32_t> NodeOfExprStore, NodeOfVarStore, LabelRootsStore;
  std::vector<uint32_t> RanOfStore;

  // The views every accessor reads: into the stores above, or into a
  // read-only file mapping (`fromTables`).
  std::span<const uint32_t> OutOffsets, OutTargets, InOffsets, InTargets;
  std::span<const uint32_t> LabelAt;
  std::span<const NodeOp> Op;
  std::span<const uint32_t> NodeOfExpr, NodeOfVar, LabelRoots, RanOf;
  double FreezeMs = 0;

  mutable std::once_flag CondOnce, SccLabelsOnce;
  mutable std::unique_ptr<Condensation> Cond;
  mutable std::vector<DenseBitset> SccLabels;
};

} // namespace stcfa

#endif // STCFA_CORE_FROZENGRAPH_H
