//===-- core/SubtransitiveGraph.h - The LC' graph ---------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution: the subtransitive control-flow graph.
///
/// Nodes are program occurrences, variable binders, and derived nodes
/// `dom(n)` / `ran(n)` (Section 3), constructor/tuple deconstructor nodes
/// `c_j^{-1}(n)` (Section 6), and — our extension for ML-style mutable
/// state — ref-cell nodes `refcell(n)`.  An edge `n1 -> n2` means
/// "anything derivable from n2 is derivable from n1"; the *transitive
/// closure* of this graph yields exactly standard CFA (Propositions 1/2):
/// `l ∈ L(e)` iff the abstraction labelled `l` is reachable from `e`.
///
/// The computation is factored exactly as in the paper:
///
///  * **build phase** (`build()`): one linear pass over the AST adding the
///    basic edges of rules ABS-1/2, APP-1/2 and their record/datatype/ref
///    analogues;
///  * **close phase** (`close()`): the demand-driven rules CLOSE-DOM' and
///    CLOSE-RAN' (and the covariant field / invariant ref-cell analogues)
///    run to fixpoint.  A derived node is *demanded* when it has an
///    incoming edge — the paper's side conditions `n -> dom(n2)` /
///    `n -> ran(n1)`.
///
/// Three closure policies are ablatable (`ClosurePolicy`), and the
/// Section 6 datatype congruences ≈1/≈2 are selectable
/// (`CongruenceMode`).  A depth widening backstop guarantees termination
/// even on inputs outside the bounded-type classes: nodes deeper than
/// `MaxNodeDepth` collapse into a `Top` summary that conservatively
/// reaches every abstraction.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_CORE_SUBTRANSITIVEGRAPH_H
#define STCFA_CORE_SUBTRANSITIVEGRAPH_H

#include "ast/Module.h"
#include "support/Deadline.h"
#include "support/Hashing.h"
#include "support/Status.h"

#include <vector>

namespace stcfa {

/// How aggressively the close phase applies CLOSE-DOM'/CLOSE-RAN'.
enum class ClosurePolicy : uint8_t {
  /// The paper's LC': a rule fires only when the derived node on its
  /// conclusion's *demand side* has an incoming edge.
  PaperExact,
  /// Relaxed demand: a rule fires as soon as the derived node exists.
  /// Sound and still bounded by the type templates; adds a few more edges.
  NodeExists,
  /// The paper's unprimed LC: derived nodes are materialised eagerly along
  /// each node's type template and closure rules fire without any demand
  /// condition.  (Ablation baseline E9.)
  Undemanded,
};

/// The Section 6 datatype congruences.
enum class CongruenceMode : uint8_t {
  /// Exact datatype tracking; termination then relies on the depth
  /// widening for recursive datatypes.
  None,
  /// ≈1: every node whose associated type is datatype T collapses into one
  /// summary node per T.  Linear node count.
  ByType,
  /// ≈2: only *deconstructor* nodes collapse, keyed by (base node, T).
  /// Strictly more precise than ≈1; up to quadratically many classes.
  ByBaseAndType,
};

/// Tuning knobs for graph construction.
struct SubtransitiveConfig {
  ClosurePolicy Policy = ClosurePolicy::PaperExact;
  CongruenceMode Congruence = CongruenceMode::ByType;
  /// Derived-node depth beyond which nodes widen into `Top`.
  uint32_t MaxNodeDepth = 64;
  /// Abort the close phase once this many nodes exist (0 = unlimited).
  /// An aborted graph must not be queried; `HybridCFA` uses this to
  /// detect programs outside the bounded-type classes and fall back to
  /// the standard algorithm (the paper's Conclusion).
  uint64_t MaxNodes = 0;
  /// Abort the close phase once this many edges exist (0 = unlimited).
  /// Catches blowups the node budget misses: congruence summaries keep
  /// the node count linear while edges grow quadratically.
  uint64_t MaxEdges = 0;
};

/// Node discriminator.
enum class NodeOp : uint8_t {
  Expr,    // payload A = ExprId
  Var,     // payload A = VarId (binder)
  Dom,     // payload A = base node
  Ran,     // payload A = base node
  Field,   // payload A = base node, B = field tag
  RefCell, // payload A = base node
  Label,   // payload A = LabelId; closure-inert label carrier (Section 7)
  Summary, // payload A = TypeId; ≈1 class representative
  Summary2,// payload A = root node, B = TypeId; ≈2 class representative
  Top,     // widening: conservatively reaches every abstraction
};

/// Per-phase size statistics (the paper's Table 1/2 node counts).
struct GraphStats {
  uint64_t BuildNodes = 0;
  uint64_t BuildEdges = 0;
  uint64_t CloseNodes = 0;
  uint64_t CloseEdges = 0;
  /// Closure-rule firings attempted (machine-independent work measure).
  uint64_t CloseRuleFirings = 0;
  /// Number of times the depth widening engaged.
  uint64_t Widenings = 0;

  uint64_t totalNodes() const { return BuildNodes + CloseNodes; }
  uint64_t totalEdges() const { return BuildEdges + CloseEdges; }
};

/// The subtransitive control-flow graph for one module.
///
/// Usage:
/// \code
///   SubtransitiveGraph G(M);
///   G.build();   // linear pass
///   G.close();   // demand-driven closure
///   Reachability R(G);
///   DenseBitset L = R.labelsOf(SomeExpr);
/// \endcode
class SubtransitiveGraph {
public:
  explicit SubtransitiveGraph(const Module &M,
                              SubtransitiveConfig Config = {});

  /// Adds the basic edges (one linear pass over the AST).
  void build();

  /// Builds only the subtree rooted at \p FragmentRoot — used by the
  /// polyvariant summariser (Section 7) to analyse a function in
  /// isolation.
  void buildFragment(ExprId FragmentRoot);

  /// Declares binders whose def-use flow is handled externally: `build()`
  /// skips the `occurrence -> binder` and `binder -> initializer` edges
  /// for them (the polyvariant instantiation supplies the flow instead).
  /// Must be called before `build()`.
  void setExternalizedVars(std::vector<bool> Flags);

  /// Marks \p N demanded regardless of incoming edges, so the close phase
  /// saturates every rule around it.  The summariser uses this to force
  /// all interface paths of a fragment.
  void forceDemand(NodeId N) { setDemanded(N); }

  /// Runs the demand-driven closure to fixpoint, governed by the config
  /// budgets (`MaxNodes`/`MaxEdges`), a wall-clock deadline, and a
  /// cooperative cancellation token.  Budgets are checked every
  /// iteration (O(1) compares); the clock, the token, and the registered
  /// fault points are polled once per governor stride so the fixpoint
  /// loop stays tight.  On any governed stop the graph is marked
  /// `aborted()` and the returned status says why
  /// (`ResourceExhausted` / `DeadlineExceeded` / `Cancelled` /
  /// `OutOfMemory` under injection).
  Status close(const Deadline &D, const CancellationToken &Token = {});

  /// Ungoverned closure (legacy entry point): no deadline, no token.
  void close() { (void)close(Deadline::infinite()); }

  /// Why the last `close()` stopped (`Ok` after a clean fixpoint).
  const Status &closeStatus() const { return CloseStatus; }

  /// True when `close()` hit a budget, the deadline, or a cancellation
  /// request and stopped early; the graph is then incomplete and must
  /// not be queried.
  bool aborted() const { return Aborted; }

  /// True once `close()` has run to fixpoint at least once; the freeze
  /// precondition (`FrozenGraph` snapshots only closed graphs).
  bool closed() const { return Closed; }

  /// Incremental use (the paper: "simple, incremental, demand-driven"):
  /// edges may be added after a `close()` — via `addEdge`, the polyvariant
  /// instantiation, or `buildMoreFragment` below — and a further `close()`
  /// extends the fixpoint.  The worklist remembers its cursor, so the
  /// extra cost is proportional to the *new* consequences only.
  ///
  /// Adds the basic build edges for one more subtree (e.g. a newly loaded
  /// definition) into an already-built graph.
  void addFragment(ExprId FragmentRoot) {
    assert(Built && "addFragment() before build()/buildFragment()");
    forEachExprPreorder(M, FragmentRoot,
                        [&](ExprId Id, const Expr *E) { buildExpr(Id, E); });
  }

  //===--- node access -----------------------------------------------------//

  const Module &module() const { return M; }
  const SubtransitiveConfig &config() const { return Config; }
  const GraphStats &stats() const { return Stats; }

  uint32_t numNodes() const { return static_cast<uint32_t>(Ops.size()); }

  NodeOp op(NodeId N) const { return Ops[N.index()]; }
  uint32_t payloadA(NodeId N) const { return PayloadA[N.index()]; }
  uint32_t payloadB(NodeId N) const { return PayloadB[N.index()]; }
  /// The type associated with \p N (drives congruences; may be invalid).
  TypeId nodeType(NodeId N) const { return NodeType[N.index()]; }

  /// Edges live in one pooled arena; adjacency is an intrusive singly
  /// linked list per node (new edges prepend, so a captured range is a
  /// stable snapshot even while edges are being added).
  struct EdgeRec {
    NodeId From;
    NodeId To;
    uint32_t NextOut;
    uint32_t NextIn;
  };

  /// Iterates the successors (or predecessors) of one node.
  class EdgeRange {
  public:
    class iterator {
    public:
      iterator(const std::vector<EdgeRec> *Pool, uint32_t Index, bool OutDir)
          : Pool(Pool), Index(Index), OutDir(OutDir) {}
      NodeId operator*() const {
        const EdgeRec &E = (*Pool)[Index];
        return OutDir ? E.To : E.From;
      }
      iterator &operator++() {
        const EdgeRec &E = (*Pool)[Index];
        Index = OutDir ? E.NextOut : E.NextIn;
        return *this;
      }
      bool operator!=(const iterator &O) const { return Index != O.Index; }
      bool operator==(const iterator &O) const { return Index == O.Index; }

    private:
      const std::vector<EdgeRec> *Pool;
      uint32_t Index;
      bool OutDir;
    };

    EdgeRange(const std::vector<EdgeRec> *Pool, uint32_t Head, bool OutDir)
        : Pool(Pool), Head(Head), OutDir(OutDir) {}
    iterator begin() const { return iterator(Pool, Head, OutDir); }
    iterator end() const { return iterator(Pool, NoEdge, OutDir); }

  private:
    const std::vector<EdgeRec> *Pool;
    uint32_t Head;
    bool OutDir;
  };

  EdgeRange succs(NodeId N) const {
    return EdgeRange(&Edges, FirstOut[N.index()], /*OutDir=*/true);
  }
  EdgeRange preds(NodeId N) const {
    return EdgeRange(&Edges, FirstIn[N.index()], /*OutDir=*/false);
  }

  /// The canonical node of an expression occurrence (may be a congruence
  /// summary under ≈1).
  NodeId exprNode(ExprId E);
  /// The canonical node of a variable binder.
  NodeId varNode(VarId V);
  /// Derived nodes; created (and canonicalized) on demand.
  NodeId domNode(NodeId Base);
  NodeId ranNode(NodeId Base);
  NodeId refCellNode(NodeId Base);
  /// Deconstructor node for field \p Index of constructor \p Con.
  NodeId conFieldNode(ConId Con, uint32_t Index, NodeId Base);
  /// Deconstructor node for tuple field \p Index (0-based).
  NodeId tupleFieldNode(uint32_t Index, NodeId Base);
  /// Closure-inert label carrier (used by the polyvariant instantiation).
  NodeId labelNode(LabelId L);

  /// If \p N carries an abstraction label (a lambda's expression node or a
  /// `Label` node), returns it; otherwise returns an invalid id.
  LabelId labelOf(NodeId N) const;

  /// Adds an edge (public for the polyvariant instantiation, Section 7).
  /// Safe to call before `close()`; new edges participate in the closure.
  void addEdge(NodeId A, NodeId B);

  /// Renders a node for debugging, e.g. `dom(fn@3)`.
  std::string describe(NodeId N) const;

  /// The canonical node of \p E if it exists (queries run post-build and
  /// must not create nodes); invalid otherwise.
  NodeId lookupExprNode(ExprId E) const {
    return E.index() < NodeOfExpr.size() ? NodeOfExpr[E.index()]
                                         : NodeId::invalid();
  }
  NodeId lookupVarNode(VarId V) const {
    return V.index() < NodeOfVar.size() ? NodeOfVar[V.index()]
                                        : NodeId::invalid();
  }

  /// The label-carrier node for \p L if one was created (polyvariant
  /// instantiation); invalid otherwise.
  NodeId lookupLabelNode(LabelId L) const;

  /// Finds an existing derived node without creating it: the canonical
  /// `ran(Base)` / `dom(Base)` / `refcell(Base)` (Tag 0) or field node.
  /// Returns an invalid id if it was never materialised.
  NodeId lookupDerived(NodeOp Op, NodeId Base, uint32_t Tag = 0) const;

  //===--- incremental surgery (src/delta) ---------------------------------//
  //
  // The edit-delta layer retracts a definition's base edges and re-closes
  // from the frontier instead of rebuilding.  These entry points exist for
  // that layer only; the analysis pipeline never calls them.

  /// While set, every `addEdge` *attempt* (including duplicates the edge
  /// set already holds, excluding self-loops) is appended to \p J.  The
  /// delta layer records each definition's base edges this way and
  /// refcounts them across definitions.
  void setEdgeJournal(std::vector<std::pair<NodeId, NodeId>> *J) {
    Journal = J;
  }

  /// True iff the edge A -> B is currently present.
  bool hasEdge(NodeId A, NodeId B) const {
    return EdgeSet.contains((uint64_t(A.index()) + 1) << 32 |
                            (uint64_t(B.index()) + 1));
  }

  /// Physically unlinks A -> B: both intrusive adjacency lists, the edge
  /// set, and the pool entry (tombstoned in place; the close cursor skips
  /// it).  No-op when the edge is absent.  O(deg(A) + deg(B)).
  void removeEdgeForDelta(NodeId A, NodeId B);

  /// Appends the one-step rule conclusions the edge (A, B) could have
  /// produced *and that currently exist*: the retraction cone expands
  /// through these until it hits edges that survive for another reason.
  void appendConsequencesForDelta(NodeId A, NodeId B,
                                  std::vector<std::pair<NodeId, NodeId>> &Out)
      const;

  /// Re-enqueues every registered (op, base, tag) alias of \p N for demand
  /// reprocessing, so the next `close()` re-derives all conclusions still
  /// supported by surviving edges around \p N.
  void requeueAliasesForDelta(NodeId N);

  /// Grows the per-module tables after the `Module` gained exprs/vars
  /// (the delta layer appends definition subtrees to a live module).
  /// Existing entries are preserved; new binders get invalid types, which
  /// only disables the datatype congruence for them — the delta fast path
  /// is gated to data-free programs where that is identity-neutral.
  void notifyModuleGrown();

  /// True when the depth widening has engaged (a `Top` node exists).  The
  /// delta layer treats this as outside its exactness envelope and falls
  /// back to a full rebuild.
  bool hasTopNode() const { return Top.isValid(); }

  /// Current size of the edge pool, tombstones included (delta metrics).
  uint64_t edgePoolSize() const { return Edges.size(); }

private:
  //===--- construction internals -------------------------------------------//

  /// One (op, base, tag) request that resolved to a (possibly shared)
  /// canonical node; demand events scan the base's edges per alias.
  struct Alias {
    NodeOp Op;
    NodeId Base;
    uint32_t Tag;
  };

  void reserveNodes(size_t Expected);
  NodeId getNode(NodeOp Op, uint32_t A, uint32_t B);
  NodeId canonicalizeBase(TypeId Ty, NodeOp Op, uint32_t Payload);
  NodeId derived(NodeOp Op, NodeId Base, uint32_t Tag);
  NodeId topNode();
  TypeId derivedType(NodeOp Op, NodeId Base, uint32_t Tag) const;
  bool isDataType(TypeId Ty) const;
  void onCreate(NodeId N);
  void setDemanded(NodeId N);
  void materializeTemplate(NodeId N);
  void processEdge(NodeId A, NodeId B);
  void processDemand(const Alias &A);
  void buildExpr(ExprId Id, const Expr *E);

  const Module &M;
  SubtransitiveConfig Config;
  GraphStats Stats;

  // Structure-of-arrays node storage.
  std::vector<NodeOp> Ops;
  std::vector<uint32_t> PayloadA;
  std::vector<uint32_t> PayloadB;
  std::vector<TypeId> NodeType;
  std::vector<NodeId> NodeRoot;
  std::vector<uint32_t> NodeDepth;
  static constexpr uint32_t NoEdge = ~0u;

  std::vector<bool> InvolvesDecon;
  std::vector<bool> Demanded;
  std::vector<bool> Created;
  std::vector<EdgeRec> Edges;
  std::vector<uint32_t> FirstOut;
  std::vector<uint32_t> FirstIn;
  /// Per-node caches of resolved derived nodes: the hot path of the close
  /// phase.  A valid entry means the (op, base) alias is registered.
  std::vector<NodeId> DomOf;
  std::vector<NodeId> RanOf;
  std::vector<NodeId> RefCellOf;
  std::vector<std::vector<std::pair<uint32_t, NodeId>>> FieldsOf;
  /// Aliases resolving to each canonical node.
  std::vector<std::vector<Alias>> AliasesOf;

  U64Map NodeIndex;
  U64Set EdgeSet;
  U64Set MaterializedSet;
  /// Delta-layer journal of addEdge attempts (null when inactive).
  std::vector<std::pair<NodeId, NodeId>> *Journal = nullptr;
  /// Edges are processed in pool order; this is the work cursor.
  uint32_t NextUnprocessedEdge = 0;
  std::vector<Alias> PendingDemand;
  size_t DemandCursor = 0;

  std::vector<NodeId> NodeOfExpr;
  std::vector<NodeId> NodeOfVar;
  /// Binder types (computed once; used for node canonicalization).
  std::vector<TypeId> VarType;
  /// Binders whose flow the polyvariant layer supplies externally.
  std::vector<bool> Externalized;

  bool InClosePhase = false;
  bool Built = false;
  bool Closed = false;
  bool Aborted = false;
  Status CloseStatus;
  NodeId Top = NodeId::invalid();
};

} // namespace stcfa

#endif // STCFA_CORE_SUBTRANSITIVEGRAPH_H
