//===-- core/LabelSetKernel.h - Word-parallel label-set closure -*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dense-bitset label-set engine: computes *every* label set of a
/// `FrozenGraph` in one pass instead of one BFS per query.
///
/// The paper's "compute all label sets" bound is O(n²), and that bound is
/// a transitive-closure-by-bitset computation (Van Horn & Mairson show
/// the closure is inherent to exhaustive 0-CFA), so the win available
/// here is constant-factor: word-parallelism and thread-parallelism.
/// The kernel propagates 64-bit label words in reverse topological order
/// over the cached Tarjan condensation of the snapshot:
///
///   * **Compacted label universe** — bit positions index only the
///     program's L abstraction labels, never graph nodes, so the closure
///     costs O(n·L/64) word-ORs rather than n²/64 (L ≪ n on real
///     programs: most nodes carry no label).
///   * **SIMD row-OR** — the inner `dst |= src` word loop runs on the
///     runtime-dispatched path in `support/SimdOps.h` (AVX-512 / AVX2 /
///     scalar, `STCFA_FORCE_SCALAR=1` pins scalar); the chosen path is
///     recorded in the `kernel.simd_path` gauge (0=scalar 1=avx2
///     2=avx512).
///   * **Chunked level scheduling** — condensation components are
///     grouped by DAG depth (level 0 = sinks); all components within a
///     level are independent.  Runs of shallow levels whose total row
///     count stays below `chunkRows()` are merged into one *chunk* and
///     swept sequentially by a single task, so deep skinny DAGs pay
///     O(levels/compression) barriers and governor polls instead of
///     O(levels); a level too large to merge forms its own chunk and
///     fans out across the `ThreadPool` lanes with one barrier.  Rows
///     are padded to 64-byte cache lines, so two lanes finalizing
///     adjacent components never write the same line (no false
///     sharing), and rows are laid out level-major with the most-read
///     components first (profile-guided by cross-edge in-degree), so a
///     chunk sweeps contiguous warm lines.
///   * **Governed, resumable closure** — the deadline / cancellation
///     token / fault sites are polled once per chunk (the hot word loops
///     stay check-free), and an aborted run reports `Status` plus a
///     *well-defined* partial result: every component whose level is
///     below `levelsCompleted()` holds its final label set, and
///     `sccComplete()`/`exprComplete()` say exactly which answers are
///     servable.  A later `run()` resumes from the first unfinished
///     chunk — completed rows are never recomputed.
///
/// The kernel is the batched-query backend: `QueryEngine` dispatches
/// `labelsOf`/`occurrencesOf` batches here above a batch-size threshold,
/// amortising one closure across the batch instead of B independent BFS
/// walks.  Point queries never pay for it.
///
/// Thread safety: `run()` must not be called concurrently with itself or
/// with the accessors; after `run()` returns, all `const` accessors are
/// safe from any number of reader threads (the matrix is immutable until
/// a resuming `run()`, which only writes rows of still-incomplete
/// levels).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_CORE_LABELSETKERNEL_H
#define STCFA_CORE_LABELSETKERNEL_H

#include "core/FrozenGraph.h"
#include "support/Deadline.h"
#include "support/DenseBitset.h"
#include "support/Status.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <memory>
#include <span>
#include <vector>

namespace stcfa {

/// One-shot (but resumable) all-label-sets closure over a frozen graph.
class LabelSetKernel {
public:
  /// Resource controls for a governed run; the defaults never fire.
  struct Controls {
    Deadline D;
    CancellationToken Token;
  };

  /// Uses \p Pool (may be null: sequential) with \p Threads logical
  /// lanes.  The pool is borrowed — `QueryEngine` shares its own.
  LabelSetKernel(const FrozenGraph &F, ThreadPool *Pool, unsigned Threads);

  /// Standalone construction: owns a pool of \p Threads lanes (none
  /// spawned when \p Threads <= 1).
  explicit LabelSetKernel(const FrozenGraph &F, unsigned Threads = 1);

  /// Adopts a complete, precomputed row matrix (a persisted snapshot's
  /// kernel-rows section): one row per condensation component,
  /// \p WordsPerSet words each, tightly packed in component-id order.
  /// The kernel is born complete — `run()` returns `Ok` immediately and
  /// never writes a row — so \p Rows may live in a read-only mapping; it
  /// must outlive this kernel.
  LabelSetKernel(const FrozenGraph &F, std::span<const uint64_t> Rows,
                 uint32_t WordsPerSet);

  /// Runs (or resumes) the closure under \p C.  Returns `Ok` on a
  /// complete matrix; `DeadlineExceeded`/`Cancelled`/`OutOfMemory` on a
  /// governed abort, leaving every level below `levelsCompleted()`
  /// final.  Calling again resumes from the first unfinished level; a
  /// completed kernel returns `Ok` immediately.
  Status run(const Controls &C = {});

  /// True once `run()` finished every level.
  bool complete() const { return Ran && RunStatus.isOk(); }

  /// Outcome of the most recent `run()` (`FailedPrecondition` before the
  /// first call).
  const Status &status() const { return RunStatus; }

  /// Depth of the condensation DAG (0 for an empty graph; meaningful
  /// once `run()` built the schedule).
  uint32_t numLevels() const { return NumLevels; }

  /// Levels fully propagated so far; `== numLevels()` iff complete.
  uint32_t levelsCompleted() const { return LevelsDone; }

  //===--- chunked scheduling ----------------------------------------------//

  /// Default level-merge threshold (rows per chunk), measured on the
  /// bench corpus: large enough to swallow the long skinny tails of
  /// deep condensations, small enough that a merged chunk still fits in
  /// L2 alongside the successor rows it reads.
  static constexpr uint32_t DefaultChunkRows = 256;

  /// Sets the level-merge threshold: consecutive levels are merged into
  /// one scheduling chunk while their total row count stays <= \p Rows.
  /// 0 (and 1) disable merging — every level is its own chunk, which
  /// restores one governor poll per level.  Must be called before the
  /// first `run()`; once the schedule is built the chunking is frozen
  /// (resume points are chunk boundaries).
  void setChunkRows(uint32_t Rows) {
    assert(!LevelsBuilt && "chunking is frozen once the schedule is built");
    ChunkRows = Rows;
  }
  uint32_t chunkRows() const { return ChunkRows; }

  /// Scheduling chunks in the frozen schedule (== barrier/poll count for
  /// a full run); meaningful once `run()` built the schedule.  Always
  /// <= `numLevels()` — the ratio is the barrier compression the merge
  /// bought.
  uint32_t numChunks() const {
    return ChunkLevelOffsets.empty()
               ? 0
               : static_cast<uint32_t>(ChunkLevelOffsets.size() - 1);
  }

  /// Chunks fully propagated so far; `== numChunks()` iff complete.
  uint32_t chunksCompleted() const { return ChunksDone; }

  //===--- partial-result contract -----------------------------------------//

  /// True iff component \p Scc holds its final label set.
  bool sccComplete(uint32_t Scc) const {
    return LevelsBuilt && SccLevel[Scc] < LevelsDone;
  }

  /// True iff node \p N's label set is servable.
  bool nodeComplete(uint32_t N) const {
    return LevelsBuilt && SccLevel[Cond->sccOf(N)] < LevelsDone;
  }

  /// True iff `labelsOf(E)` is servable.  An occurrence with no graph
  /// node has the well-defined empty answer, so it is always complete.
  bool exprComplete(ExprId E) const {
    uint32_t N = F.nodeOfExpr(E);
    return N == FrozenGraph::None || nodeComplete(N);
  }

  //===--- answers ---------------------------------------------------------//

  /// The label set of occurrence \p E.  Only meaningful when
  /// `exprComplete(E)`; an incomplete query returns the empty set.
  DenseBitset labelsOf(ExprId E) const;

  /// The label set reachable from node \p N (same completeness caveat).
  DenseBitset labelsOfNode(uint32_t N) const;

  /// True iff label \p L is in node \p N's (complete) label set.
  bool hasLabel(uint32_t N, uint32_t Label) const {
    const uint64_t *R = row(Cond->sccOf(N));
    return (R[Label / 64] >> (Label % 64)) & 1;
  }

  /// Words per label-set row before cache-line padding: `⌈L/64⌉`.
  uint32_t wordsPerSet() const { return WordsPerSet; }

  /// The final row of component \p Scc — `wordsPerSet()` words, padding
  /// excluded — for the snapshot writer.  Requires `complete()`.
  std::span<const uint64_t> rowSpan(uint32_t Scc) const {
    return {row(Scc), WordsPerSet};
  }

  /// Milliseconds spent inside `run()` so far (summed across resumes).
  double closureMillis() const { return ClosureMs; }

private:
  Status buildSchedule();
  /// Physical row index of component \p Scc.  `RowOf` is the
  /// profile-guided layout permutation (empty = identity, as in adopted
  /// snapshots, whose rows are tight-packed in component-id order).
  size_t rowIndex(uint32_t Scc) const {
    return RowOf.empty() ? Scc : RowOf[Scc];
  }
  const uint64_t *row(uint32_t Scc) const {
    return Matrix + rowIndex(Scc) * RowWords;
  }
  uint64_t *rowMut(uint32_t Scc) { return Matrix + rowIndex(Scc) * RowWords; }
  void closeComponent(uint32_t Scc, uint64_t &WordOrs);

  const FrozenGraph &F;
  ThreadPool *Pool; // borrowed or owned via OwnedPool; null = sequential
  std::unique_ptr<ThreadPool> OwnedPool;
  unsigned Threads;

  Status RunStatus;
  bool Ran = false;
  bool LevelsBuilt = false;
  uint32_t NumLevels = 0;
  uint32_t LevelsDone = 0;
  double ClosureMs = 0;

  // Schedule: the condensation (cached on the snapshot), nodes grouped
  // by component (CSR), components grouped by level (CSR), levels
  // merged into chunks (CSR over level indices), and the
  // profile-guided row permutation.
  const Condensation *Cond = nullptr;
  std::vector<uint32_t> SccNodeOffsets, SccNodes;
  std::vector<uint32_t> SccLevel;
  std::vector<uint32_t> LevelOffsets, LevelComps;
  uint32_t ChunkRows = DefaultChunkRows;
  std::vector<uint32_t> ChunkLevelOffsets;
  uint32_t ChunksDone = 0;
  std::vector<uint32_t> RowOf;
  // Per-node physical row (`RowOf[sccOf(node)]` precomputed), so the
  // close loop maps an edge target to its row with a single load.
  // Uninitialized-alloc array, not a vector: it is fully overwritten
  // right after allocation and the zero-fill would be pure waste.
  std::unique_ptr<uint32_t[]> NodeRow;

  // The label-set matrix: one row per component, `RowWords` 64-bit words
  // each.  `RowWords` is `WordsPerSet` rounded up to a full cache line
  // (multiple of 8 words) and `Matrix` is 64-byte aligned into
  // `MatrixStore`, so no two rows share a cache line.
  uint32_t WordsPerSet = 0;
  uint32_t RowWords = 0;
  std::vector<uint64_t> MatrixStore;
  uint64_t *Matrix = nullptr;
};

} // namespace stcfa

#endif // STCFA_CORE_LABELSETKERNEL_H
