//===-- core/QueryEngine.cpp - Parallel batched CFA queries ---------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/QueryEngine.h"

#include "core/LabelSetKernel.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>

using namespace stcfa;

QueryEngine::QueryEngine(const FrozenGraph &F, unsigned Threads)
    : F(F), NumThreads(Threads ? Threads : 1) {
  Lanes.resize(NumThreads);
  for (Scratch &S : Lanes)
    S.Stamp.assign(F.numNodes(), 0);
  if (NumThreads > 1)
    Pool = std::make_unique<ThreadPool>(NumThreads);
}

QueryEngine::~QueryEngine() = default;

void QueryEngine::adoptKernel(std::unique_ptr<LabelSetKernel> K) {
  Kern = std::move(K);
}

LabelSetKernel &QueryEngine::kernelRef() {
  if (!Kern) {
    Kern = std::make_unique<LabelSetKernel>(F, Pool.get(), NumThreads);
    Kern->setChunkRows(KernelChunkRows);
  }
  return *Kern;
}

bool QueryEngine::dispatchKernel(size_t BatchSize, const Deadline &D,
                                 const CancellationToken &Token) {
  if (!kernelEligible(BatchSize))
    return false;
  Status S = kernelRef().run({D, Token});
  static Counter &KernelDispatch = counter("query.batch.kernel_dispatch");
  static Counter &Fallbacks = counter("query.batch.kernel_fallback");
  if (S.isOk()) {
    KernelDispatch.inc();
    return true;
  }
  // Abort (real deadline/cancel or injected fault) → transparent per-
  // query BFS fallback; the instant event records why.
  Fallbacks.inc();
  traceInstant("query.kernel-fallback", "cause", statusCodeName(S.code()));
  return false;
}

/// Forward/reverse duality: an occurrence `E` is in `occurrencesOf(L)`
/// (reverse reachability from `L`'s roots) iff `L` is in `labelsOf(E)`
/// (forward closure).  The nodes carrying label `L` are exactly `L`'s
/// two reverse roots — congruence summaries only merge datatype-typed
/// nodes, never a lambda's occurrence node or a label carrier — so the
/// kernel's forward rows answer the reverse query with one bit test per
/// occurrence.  (The equivalence suite pins this against the reverse
/// BFS over the whole corpus.)
void QueryEngine::occurrencesFromKernel(const LabelSetKernel &K, LabelId L,
                                        std::vector<ExprId> &Out) {
  const uint32_t Label = L.index();
  for (uint32_t I = 0, E = F.numExprs(); I != E; ++I) {
    uint32_t N = F.nodeOfExpr(ExprId(I));
    if (N != FrozenGraph::None && K.hasLabel(N, Label))
      Out.push_back(ExprId(I));
  }
}

void QueryEngine::bumpEpoch(Scratch &S) {
  // The stamp vector distinguishes visits by epoch; when the 32-bit
  // epoch wraps, stale stamps from 2^32 queries ago would alias the new
  // epoch, so reset them all once and restart from 1.
  if (++S.Epoch == 0) {
    std::fill(S.Stamp.begin(), S.Stamp.end(), 0);
    S.Epoch = 1;
  }
}

template <typename FnT>
void QueryEngine::forEachReachable(Scratch &S, uint32_t Start, FnT Fn) {
  bumpEpoch(S);
  S.Stack.clear();
  S.Stack.push_back(Start);
  S.Stamp[Start] = S.Epoch;
  while (!S.Stack.empty()) {
    uint32_t N = S.Stack.back();
    S.Stack.pop_back();
    ++S.Visited;
    if (!Fn(N))
      return;
    for (uint32_t Succ : F.succs(N)) {
      if (S.Stamp[Succ] == S.Epoch)
        continue;
      S.Stamp[Succ] = S.Epoch;
      S.Stack.push_back(Succ);
    }
  }
}

DenseBitset QueryEngine::labelsFromNode(Scratch &S, uint32_t Start) {
  // The allLabelSets / labelsOfBatch hot path: a hand-unrolled DFS over
  // raw CSR arrays (hoisted pointers, no per-row span construction).
  DenseBitset Out(F.numLabels());
  bumpEpoch(S);
  const uint32_t *Off = F.outOffsets();
  const uint32_t *Tgt = F.outTargets();
  const uint32_t *Lab = F.labelArray();
  uint32_t *Stamp = S.Stamp.data();
  const uint32_t Epoch = S.Epoch;
  S.Stack.clear();
  S.Stack.push_back(Start);
  Stamp[Start] = Epoch;
  uint64_t Visited = 0;
  while (!S.Stack.empty()) {
    uint32_t N = S.Stack.back();
    S.Stack.pop_back();
    ++Visited;
    if (uint32_t L = Lab[N]; L != FrozenGraph::None)
      Out.insert(L);
    for (uint32_t I = Off[N], End = Off[N + 1]; I != End; ++I) {
      uint32_t Succ = Tgt[I];
      if (Stamp[Succ] != Epoch) {
        Stamp[Succ] = Epoch;
        S.Stack.push_back(Succ);
      }
    }
  }
  S.Visited += Visited;
  return Out;
}

bool QueryEngine::labelReachableFrom(Scratch &S, uint32_t Start,
                                     uint32_t Label) {
  bool Found = false;
  forEachReachable(S, Start, [&](uint32_t N) {
    if (F.labelAt(N) == Label) {
      Found = true;
      return false; // stop the search
    }
    return true;
  });
  return Found;
}

void QueryEngine::markOccurrences(Scratch &S, LabelId L,
                                  std::vector<ExprId> &Out) {
  // Reverse reachability from the abstraction node and (polyvariant
  // instantiation) the label-carrier node.
  bumpEpoch(S);
  S.Stack.clear();
  auto [Lam, Carrier] = F.labelRoots(L);
  for (uint32_t Root : {Lam, Carrier}) {
    if (Root == FrozenGraph::None)
      continue;
    S.Stack.push_back(Root);
    S.Stamp[Root] = S.Epoch;
  }
  if (S.Stack.empty())
    return;
  while (!S.Stack.empty()) {
    uint32_t N = S.Stack.back();
    S.Stack.pop_back();
    ++S.Visited;
    for (uint32_t P : F.preds(N)) {
      if (S.Stamp[P] == S.Epoch)
        continue;
      S.Stamp[P] = S.Epoch;
      S.Stack.push_back(P);
    }
  }

  // A congruence summary node may stand for many occurrences, so map
  // expressions to their canonical nodes rather than the reverse.
  for (uint32_t I = 0, E = F.numExprs(); I != E; ++I) {
    uint32_t N = F.nodeOfExpr(ExprId(I));
    if (N != FrozenGraph::None && S.Stamp[N] == S.Epoch)
      Out.push_back(ExprId(I));
  }
}

//===----------------------------------------------------------------------===//
// Point queries
//===----------------------------------------------------------------------===//

bool QueryEngine::isLabelIn(ExprId E, LabelId L) {
  uint32_t Start = F.nodeOfExpr(E);
  if (Start == FrozenGraph::None)
    return false;
  return labelReachableFrom(Lanes[0], Start, L.index());
}

DenseBitset QueryEngine::labelsOf(ExprId E) {
  uint32_t Start = F.nodeOfExpr(E);
  if (Start == FrozenGraph::None)
    return DenseBitset(F.numLabels());
  return labelsFromNode(Lanes[0], Start);
}

DenseBitset QueryEngine::labelsOfVar(VarId V) {
  uint32_t Start = F.nodeOfVar(V);
  if (Start == FrozenGraph::None)
    return DenseBitset(F.numLabels());
  return labelsFromNode(Lanes[0], Start);
}

DenseBitset QueryEngine::labelsOfNode(uint32_t N) {
  return labelsFromNode(Lanes[0], N);
}

std::vector<ExprId> QueryEngine::occurrencesOf(LabelId L) {
  std::vector<ExprId> Out;
  markOccurrences(Lanes[0], L, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Batched queries
//===----------------------------------------------------------------------===//

namespace {

/// Splits \p N items into one contiguous shard per lane.
struct Shard {
  size_t Begin, End;
};

inline Shard shardOf(size_t N, size_t NumShards, size_t Index) {
  size_t Chunk = (N + NumShards - 1) / NumShards;
  size_t Begin = std::min(N, Index * Chunk);
  return {Begin, std::min(N, Begin + Chunk)};
}

} // namespace

std::vector<DenseBitset>
QueryEngine::labelsOfBatch(const std::vector<ExprId> &Es) {
  Span BatchSpan("query.batch.labels");
  BatchSpan.arg("items", Es.size());
  BatchSpan.arg("lanes", NumThreads);
  // Above the threshold, one kernel closure is amortised across the
  // whole batch and each answer is a row copy.  A kernel abort (only
  // possible through injected faults on this ungoverned path) falls
  // through to the per-query BFS below.
  if (dispatchKernel(Es.size())) {
    BatchSpan.arg("dispatch", "kernel");
    const LabelSetKernel &K = *Kern;
    std::vector<DenseBitset> Out(Es.size());
    auto CopyShard = [&](unsigned Lane, size_t Index) {
      Shard Sh = shardOf(Es.size(), NumThreads, Index);
      Span LaneSpan("query.lane");
      LaneSpan.arg("lane", Lane);
      LaneSpan.arg("items", Sh.End - Sh.Begin);
      for (size_t I = Sh.Begin; I != Sh.End; ++I)
        Out[I] = K.labelsOf(Es[I]);
    };
    if (Pool)
      Pool->parallelFor(NumThreads, CopyShard);
    else
      CopyShard(0, 0);
    return Out;
  }

  BatchSpan.arg("dispatch", "bfs");
  static Counter &BfsDispatch = counter("query.batch.bfs_dispatch");
  BfsDispatch.inc();
  std::vector<DenseBitset> Out(Es.size());
  auto RunShard = [&](unsigned Lane, size_t Index) {
    Scratch &S = Lanes[Lane];
    Shard Sh = shardOf(Es.size(), NumThreads, Index);
    Span LaneSpan("query.lane");
    LaneSpan.arg("lane", Lane);
    LaneSpan.arg("items", Sh.End - Sh.Begin);
    for (size_t I = Sh.Begin; I != Sh.End; ++I) {
      uint32_t Start = F.nodeOfExpr(Es[I]);
      Out[I] = Start == FrozenGraph::None ? DenseBitset(F.numLabels())
                                          : labelsFromNode(S, Start);
    }
  };
  if (Pool)
    Pool->parallelFor(NumThreads, RunShard);
  else
    RunShard(0, 0);
  return Out;
}

std::vector<char>
QueryEngine::isLabelInBatch(const std::vector<std::pair<ExprId, LabelId>> &Qs) {
  std::vector<char> Out(Qs.size(), 0);
  Span BatchSpan("query.batch.members");
  BatchSpan.arg("items", Qs.size());
  BatchSpan.arg("lanes", NumThreads);
  // Membership batches never *build* the closure (a single bit each is
  // too cheap to justify it), but once an earlier batch completed the
  // kernel, every membership test is one O(1) bit probe.
  const LabelSetKernel *K =
      (KernelThreshold != 0 && Kern && Kern->complete()) ? Kern.get()
                                                         : nullptr;
  BatchSpan.arg("dispatch", K ? "kernel" : "bfs");
  auto RunShard = [&](unsigned Lane, size_t Index) {
    Scratch &S = Lanes[Lane];
    Shard Sh = shardOf(Qs.size(), NumThreads, Index);
    Span LaneSpan("query.lane");
    LaneSpan.arg("lane", Lane);
    LaneSpan.arg("items", Sh.End - Sh.Begin);
    for (size_t I = Sh.Begin; I != Sh.End; ++I) {
      uint32_t Start = F.nodeOfExpr(Qs[I].first);
      Out[I] = Start != FrozenGraph::None &&
               (K ? K->hasLabel(Start, Qs[I].second.index())
                  : labelReachableFrom(S, Start, Qs[I].second.index()));
    }
  };
  if (Pool)
    Pool->parallelFor(NumThreads, RunShard);
  else
    RunShard(0, 0);
  return Out;
}

std::vector<std::vector<ExprId>>
QueryEngine::occurrencesOfBatch(const std::vector<LabelId> &Ls) {
  std::vector<std::vector<ExprId>> Out(Ls.size());
  Span BatchSpan("query.batch.occurrences");
  BatchSpan.arg("items", Ls.size());
  BatchSpan.arg("lanes", NumThreads);
  // Kernel path (find_callers batches): one forward closure, then one
  // bit probe per (label, occurrence) pair via the forward/reverse
  // duality — instead of one reverse BFS per label.
  if (dispatchKernel(Ls.size())) {
    BatchSpan.arg("dispatch", "kernel");
    const LabelSetKernel &K = *Kern;
    auto ProbeShard = [&](unsigned Lane, size_t Index) {
      Shard Sh = shardOf(Ls.size(), NumThreads, Index);
      Span LaneSpan("query.lane");
      LaneSpan.arg("lane", Lane);
      LaneSpan.arg("items", Sh.End - Sh.Begin);
      for (size_t I = Sh.Begin; I != Sh.End; ++I)
        occurrencesFromKernel(K, Ls[I], Out[I]);
    };
    if (Pool)
      Pool->parallelFor(NumThreads, ProbeShard);
    else
      ProbeShard(0, 0);
    return Out;
  }

  BatchSpan.arg("dispatch", "bfs");
  static Counter &BfsDispatch = counter("query.batch.bfs_dispatch");
  BfsDispatch.inc();
  auto RunShard = [&](unsigned Lane, size_t Index) {
    Scratch &S = Lanes[Lane];
    Shard Sh = shardOf(Ls.size(), NumThreads, Index);
    Span LaneSpan("query.lane");
    LaneSpan.arg("lane", Lane);
    LaneSpan.arg("items", Sh.End - Sh.Begin);
    for (size_t I = Sh.Begin; I != Sh.End; ++I)
      markOccurrences(S, Ls[I], Out[I]);
  };
  if (Pool)
    Pool->parallelFor(NumThreads, RunShard);
  else
    RunShard(0, 0);
  return Out;
}

std::vector<DenseBitset> QueryEngine::allLabelSets(bool UseScc) {
  std::vector<DenseBitset> Out(F.numExprs(), DenseBitset(F.numLabels()));
  Span BatchSpan("query.all-labels");
  BatchSpan.arg("exprs", F.numExprs());
  BatchSpan.arg("lanes", NumThreads);
  BatchSpan.arg("strategy", UseScc ? "scc" : "bfs");

  if (UseScc) {
    // The condensation and its per-component label sets are cached on
    // the frozen graph, so repeat calls cost only the output copies.
    const Condensation &C = F.condensation();
    const std::vector<DenseBitset> &SccLabels = F.sccLabelSets();
    for (uint32_t I = 0, E = F.numExprs(); I != E; ++I) {
      uint32_t N = F.nodeOfExpr(ExprId(I));
      if (N != FrozenGraph::None)
        Out[I] = SccLabels[C.sccOf(N)];
    }
    return Out;
  }

  // Naive strategy: one DFS per distinct canonical node, memoized.  The
  // distinct-node list is built sequentially, then sharded — each lane
  // writes only its own slots of `PerNode`, so no synchronisation.
  std::vector<DenseBitset> PerNode(F.numNodes());
  std::vector<uint32_t> Distinct;
  {
    std::vector<bool> Seen(F.numNodes(), false);
    for (uint32_t I = 0, E = F.numExprs(); I != E; ++I) {
      uint32_t N = F.nodeOfExpr(ExprId(I));
      if (N != FrozenGraph::None && !Seen[N]) {
        Seen[N] = true;
        Distinct.push_back(N);
      }
    }
  }
  auto RunShard = [&](unsigned Lane, size_t Index) {
    Scratch &S = Lanes[Lane];
    Shard Sh = shardOf(Distinct.size(), NumThreads, Index);
    Span LaneSpan("query.lane");
    LaneSpan.arg("lane", Lane);
    LaneSpan.arg("items", Sh.End - Sh.Begin);
    for (size_t I = Sh.Begin; I != Sh.End; ++I)
      PerNode[Distinct[I]] = labelsFromNode(S, Distinct[I]);
  };
  if (Pool)
    Pool->parallelFor(NumThreads, RunShard);
  else
    RunShard(0, 0);
  for (uint32_t I = 0, E = F.numExprs(); I != E; ++I) {
    uint32_t N = F.nodeOfExpr(ExprId(I));
    if (N != FrozenGraph::None)
      Out[I] = PerNode[N];
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Governed batched queries
//===----------------------------------------------------------------------===//

template <typename ItemFn>
void QueryEngine::runGoverned(size_t N, const BatchControl &C,
                              BatchOutcome &Out, ItemFn Item) {
  Out.S = Status::ok();
  Out.Completed = 0;
  Out.Done.assign(N, 0);

  // One flag stops every lane; the CAS winner owns the status slot, so
  // the first failure is the one reported and no lock is needed.
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Completed{0};
  auto fail = [&](Status S) {
    bool Expected = false;
    if (Stop.compare_exchange_strong(Expected, true))
      Out.S = std::move(S);
  };
  auto RunShard = [&](unsigned Lane, size_t Index) {
    Scratch &S = Lanes[Lane];
    Shard Sh = shardOf(N, NumThreads, Index);
    Span LaneSpan("query.lane");
    LaneSpan.arg("lane", Lane);
    LaneSpan.arg("items", Sh.End - Sh.Begin);
    for (size_t I = Sh.Begin; I != Sh.End; ++I) {
      if (Stop.load(std::memory_order_relaxed))
        return;
      if (C.Token.cancelled() || faultFires(fault::QueryBatchCancel))
        return fail(Status::cancelled("batched query cancelled"));
      if (C.D.expired() || faultFires(fault::QueryBatchDeadline))
        return fail(
            Status::deadlineExceeded("batched query exceeded its deadline"));
      Item(S, I);
      Out.Done[I] = 1;
      Completed.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (Pool)
    Pool->parallelFor(NumThreads, RunShard);
  else
    RunShard(0, 0);
  Out.Completed = Completed.load();
  static Counter &Items = counter("query.batch.items_completed");
  static Counter &Aborts = counter("query.batch.aborts");
  Items.add(Out.Completed);
  if (!Out.S.isOk())
    Aborts.inc();
}

std::vector<DenseBitset>
QueryEngine::labelsOfBatch(const std::vector<ExprId> &Es,
                           const BatchControl &C, BatchOutcome &Outcome) {
  std::vector<DenseBitset> Out(Es.size(), DenseBitset(F.numLabels()));
  Span BatchSpan("query.batch.labels");
  BatchSpan.arg("items", Es.size());
  BatchSpan.arg("lanes", NumThreads);
  // Kernel path: run the closure under the batch's own controls, then
  // materialise answers through `runGoverned`, so per-item governor
  // semantics (poll-between-items, prefix Done flags, the query.batch-*
  // fault sites) are identical to the BFS path.  If the kernel aborts —
  // real deadline/cancel or an injected kernel fault — fall through to
  // the governed per-query BFS: a real trigger re-fires on its first
  // poll there (canonical partial result), an injected kernel fault
  // degrades to the slow path and the batch still completes.
  if (dispatchKernel(Es.size(), C.D, C.Token)) {
    BatchSpan.arg("dispatch", "kernel");
    const LabelSetKernel &K = *Kern;
    runGoverned(Es.size(), C, Outcome,
                [&](Scratch &, size_t I) { Out[I] = K.labelsOf(Es[I]); });
    return Out;
  }
  BatchSpan.arg("dispatch", "bfs");
  static Counter &BfsDispatch = counter("query.batch.bfs_dispatch");
  BfsDispatch.inc();
  runGoverned(Es.size(), C, Outcome, [&](Scratch &S, size_t I) {
    uint32_t Start = F.nodeOfExpr(Es[I]);
    if (Start != FrozenGraph::None)
      Out[I] = labelsFromNode(S, Start);
  });
  return Out;
}

std::vector<char>
QueryEngine::isLabelInBatch(const std::vector<std::pair<ExprId, LabelId>> &Qs,
                            const BatchControl &C, BatchOutcome &Outcome) {
  std::vector<char> Out(Qs.size(), 0);
  Span BatchSpan("query.batch.members");
  BatchSpan.arg("items", Qs.size());
  BatchSpan.arg("lanes", NumThreads);
  // Same policy as the ungoverned overload: probe the kernel only if an
  // earlier batch already completed it.
  const LabelSetKernel *K =
      (KernelThreshold != 0 && Kern && Kern->complete()) ? Kern.get()
                                                         : nullptr;
  BatchSpan.arg("dispatch", K ? "kernel" : "bfs");
  runGoverned(Qs.size(), C, Outcome, [&](Scratch &S, size_t I) {
    uint32_t Start = F.nodeOfExpr(Qs[I].first);
    Out[I] = Start != FrozenGraph::None &&
             (K ? K->hasLabel(Start, Qs[I].second.index())
                : labelReachableFrom(S, Start, Qs[I].second.index()));
  });
  return Out;
}

std::vector<std::vector<ExprId>>
QueryEngine::occurrencesOfBatch(const std::vector<LabelId> &Ls,
                                const BatchControl &C, BatchOutcome &Outcome) {
  std::vector<std::vector<ExprId>> Out(Ls.size());
  Span BatchSpan("query.batch.occurrences");
  BatchSpan.arg("items", Ls.size());
  BatchSpan.arg("lanes", NumThreads);
  // Mirrors governed labelsOfBatch: kernel closure under the batch
  // controls, canonical per-item materialisation, BFS fallback on abort.
  if (dispatchKernel(Ls.size(), C.D, C.Token)) {
    BatchSpan.arg("dispatch", "kernel");
    const LabelSetKernel &K = *Kern;
    runGoverned(Ls.size(), C, Outcome, [&](Scratch &, size_t I) {
      occurrencesFromKernel(K, Ls[I], Out[I]);
    });
    return Out;
  }
  BatchSpan.arg("dispatch", "bfs");
  static Counter &BfsDispatch = counter("query.batch.bfs_dispatch");
  BfsDispatch.inc();
  runGoverned(Ls.size(), C, Outcome, [&](Scratch &S, size_t I) {
    markOccurrences(S, Ls[I], Out[I]);
  });
  return Out;
}

uint64_t QueryEngine::nodesVisited() const {
  uint64_t Total = 0;
  for (const Scratch &S : Lanes)
    Total += S.Visited;
  return Total;
}
