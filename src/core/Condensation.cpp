//===-- core/Condensation.cpp - SCC condensation of the graph -------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Condensation.h"

#include "core/SubtransitiveGraph.h"

#include <algorithm>

using namespace stcfa;

namespace {

/// One iterative Tarjan pass.  `SuccsOf(N)` must return an iterable range
/// whose elements convert to a node index via `indexOf`; the range object
/// is captured in the DFS frame, so it must stay valid while iterated.
inline uint32_t indexOf(uint32_t N) { return N; }
inline uint32_t indexOf(NodeId N) { return N.index(); }

template <typename SuccRangeFn>
uint32_t tarjan(uint32_t NumNodes, SuccRangeFn SuccsOf,
                std::vector<uint32_t> &SccOf) {
  SccOf.assign(NumNodes, ~0u);
  std::vector<uint32_t> Index(NumNodes, 0), Low(NumNodes, 0);
  std::vector<bool> OnStack(NumNodes, false);
  std::vector<uint32_t> TarjanStack;
  uint32_t NextIndex = 1, NumSccs = 0;

  using RangeT = decltype(SuccsOf(0u));
  using IterT = decltype(std::declval<RangeT>().begin());
  struct Frame {
    uint32_t Node;
    IterT Next;
    IterT End;
  };
  std::vector<Frame> Frames;

  for (uint32_t Root = 0; Root != NumNodes; ++Root) {
    if (Index[Root] != 0)
      continue;
    auto RootRange = SuccsOf(Root);
    Frames.push_back({Root, RootRange.begin(), RootRange.end()});
    Index[Root] = Low[Root] = NextIndex++;
    TarjanStack.push_back(Root);
    OnStack[Root] = true;
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      if (F.Next != F.End) {
        uint32_t S = indexOf(*F.Next);
        ++F.Next;
        if (Index[S] == 0) {
          Index[S] = Low[S] = NextIndex++;
          TarjanStack.push_back(S);
          OnStack[S] = true;
          auto SRange = SuccsOf(S);
          Frames.push_back({S, SRange.begin(), SRange.end()});
        } else if (OnStack[S]) {
          Low[F.Node] = std::min(Low[F.Node], Index[S]);
        }
        continue;
      }
      uint32_t N = F.Node;
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().Node] = std::min(Low[Frames.back().Node], Low[N]);
      if (Low[N] != Index[N])
        continue;
      // N is an SCC root: pop its component.
      uint32_t Scc = NumSccs++;
      while (true) {
        uint32_t W = TarjanStack.back();
        TarjanStack.pop_back();
        OnStack[W] = false;
        SccOf[W] = Scc;
        if (W == N)
          break;
      }
    }
  }
  return NumSccs;
}

/// A CSR row as an iterable range of raw pointers.
struct CsrRow {
  const uint32_t *First;
  const uint32_t *Last;
  const uint32_t *begin() const { return First; }
  const uint32_t *end() const { return Last; }
};

} // namespace

Condensation::Condensation(uint32_t NumNodes,
                           std::span<const uint32_t> Offsets,
                           std::span<const uint32_t> Targets) {
  const uint32_t *Base = Targets.data();
  NumSccs = tarjan(
      NumNodes,
      [&](uint32_t N) { return CsrRow{Base + Offsets[N], Base + Offsets[N + 1]}; },
      Owned);
  SccOf = Owned;
}

Condensation::Condensation(const SubtransitiveGraph &G) {
  NumSccs = tarjan(
      G.numNodes(), [&](uint32_t N) { return G.succs(NodeId(N)); }, Owned);
  SccOf = Owned;
}
