//===-- core/SubtransitiveGraph.cpp - The LC' graph -----------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/SubtransitiveGraph.h"

#include "ast/Printer.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace stcfa;

namespace {

// Field tags pack (is-tuple, constructor-or-arity, index) into 28 bits so
// the whole node identity fits one 64-bit hash-cons key.
constexpr uint32_t TagTupleBit = 1u << 27;

uint32_t packTag(bool IsTuple, uint32_t ConOrArity, uint32_t Index) {
  assert(ConOrArity < (1u << 15) && Index < (1u << 12) &&
         "field tag out of range");
  return (IsTuple ? TagTupleBit : 0u) | (ConOrArity << 12) | Index;
}

bool tagIsTuple(uint32_t Tag) { return (Tag & TagTupleBit) != 0; }
uint32_t tagConOrArity(uint32_t Tag) { return (Tag >> 12) & 0x7fff; }
uint32_t tagIndex(uint32_t Tag) { return Tag & 0xfff; }

uint64_t nodeKey(NodeOp Op, uint32_t A, uint32_t B) {
  assert(A < (1u << 28) && B < (1u << 28) && "node payload out of range");
  // +1 keeps the key non-zero (U64Map reserves 0).
  return ((uint64_t(Op) << 56) | (uint64_t(A) << 28) | B) + 1;
}

} // namespace

SubtransitiveGraph::SubtransitiveGraph(const Module &M,
                                       SubtransitiveConfig Config)
    : M(M), Config(Config) {
  // Binder types for node canonicalization, derived from inferred
  // occurrence types (invalid entries are fine: they just disable the
  // datatype congruence for that binder).
  VarType.assign(M.numVars(), TypeId::invalid());
  const TypeTable &TT = M.types();
  for (uint32_t I = 0, E = M.numVars(); I != E; ++I) {
    ExprId Binder = M.var(VarId(I)).Binder;
    if (!Binder.isValid())
      continue;
    const Expr *B = M.expr(Binder);
    if (const auto *Lam = dyn_cast<LamExpr>(B)) {
      TypeId LamTy = Lam->type();
      if (LamTy.isValid() && TT.type(LamTy).Kind == TypeKind::Arrow)
        VarType[I] = TT.type(LamTy).Args[0];
    } else if (const auto *Let = dyn_cast<LetExpr>(B)) {
      if (Let->var() == VarId(I))
        VarType[I] = M.expr(Let->init())->type();
    } else if (const auto *Case = dyn_cast<CaseExpr>(B)) {
      for (const CaseArm &Arm : Case->arms())
        for (size_t J = 0; J != Arm.Binders.size(); ++J)
          if (Arm.Binders[J] == VarId(I))
            VarType[I] = M.con(Arm.Con).ArgTypes[J];
    }
  }
}

void SubtransitiveGraph::reserveNodes(size_t Expected) {
  Ops.reserve(Expected);
  PayloadA.reserve(Expected);
  PayloadB.reserve(Expected);
  NodeType.reserve(Expected);
  NodeRoot.reserve(Expected);
  NodeDepth.reserve(Expected);
  InvolvesDecon.reserve(Expected);
  Demanded.reserve(Expected);
  Created.reserve(Expected);
  DomOf.reserve(Expected);
  RanOf.reserve(Expected);
  RefCellOf.reserve(Expected);
  FirstOut.reserve(Expected);
  FirstIn.reserve(Expected);
  FieldsOf.reserve(Expected);
  AliasesOf.reserve(Expected);
  Edges.reserve(Expected * 2);
}

bool SubtransitiveGraph::isDataType(TypeId Ty) const {
  return Ty.isValid() && M.types().type(Ty).Kind == TypeKind::Data;
}

NodeId SubtransitiveGraph::getNode(NodeOp Op, uint32_t A, uint32_t B) {
  uint64_t Key = nodeKey(Op, A, B);
  uint32_t &Slot = NodeIndex.lookupOrInsert(Key, ~0u);
  if (Slot != ~0u)
    return NodeId(Slot);
  NodeId N(static_cast<uint32_t>(Ops.size()));
  Ops.push_back(Op);
  PayloadA.push_back(A);
  PayloadB.push_back(B);
  NodeType.push_back(TypeId::invalid());
  NodeRoot.push_back(N);
  NodeDepth.push_back(0);
  InvolvesDecon.push_back(false);
  Demanded.push_back(false);
  Created.push_back(false);
  DomOf.push_back(NodeId::invalid());
  RanOf.push_back(NodeId::invalid());
  RefCellOf.push_back(NodeId::invalid());
  FirstOut.push_back(NoEdge);
  FirstIn.push_back(NoEdge);
  FieldsOf.emplace_back();
  AliasesOf.emplace_back();
  Slot = N.index();
  if (InClosePhase)
    ++Stats.CloseNodes;
  else
    ++Stats.BuildNodes;
  return N;
}

NodeId SubtransitiveGraph::topNode() {
  if (Top.isValid())
    return Top;
  Top = getNode(NodeOp::Top, 0, 0);
  setDemanded(Top);
  // Soundness of the widening: Top conservatively evaluates to every
  // abstraction in the program.
  for (uint32_t L = 0, E = M.numLabels(); L != E; ++L)
    addEdge(Top, exprNode(M.lamOfLabel(LabelId(L))));
  return Top;
}

NodeId SubtransitiveGraph::canonicalizeBase(TypeId Ty, NodeOp Op,
                                            uint32_t Payload) {
  NodeId N;
  if (Config.Congruence == CongruenceMode::ByType && isDataType(Ty))
    N = getNode(NodeOp::Summary, Ty.index(), 0);
  else
    N = getNode(Op, Payload, 0);
  if (!Created[N.index()]) {
    NodeType[N.index()] = Ty;
    onCreate(N);
  }
  return N;
}

NodeId SubtransitiveGraph::exprNode(ExprId E) {
  // Resize-preserving: the module can grow underneath a live graph (the
  // delta layer appends definition subtrees), and existing entries must
  // survive — `lookupExprNode` serves freeze and queries from this table.
  if (NodeOfExpr.size() < M.numExprs())
    NodeOfExpr.resize(M.numExprs(), NodeId::invalid());
  NodeId &Slot = NodeOfExpr[E.index()];
  if (Slot.isValid())
    return Slot;
  Slot = canonicalizeBase(M.expr(E)->type(), NodeOp::Expr, E.index());
  return Slot;
}

NodeId SubtransitiveGraph::varNode(VarId V) {
  if (NodeOfVar.size() < M.numVars())
    NodeOfVar.resize(M.numVars(), NodeId::invalid());
  if (VarType.size() < M.numVars())
    VarType.resize(M.numVars(), TypeId::invalid());
  NodeId &Slot = NodeOfVar[V.index()];
  if (Slot.isValid())
    return Slot;
  Slot = canonicalizeBase(VarType[V.index()], NodeOp::Var, V.index());
  return Slot;
}

NodeId SubtransitiveGraph::labelNode(LabelId L) {
  NodeId N = getNode(NodeOp::Label, L.index(), 0);
  if (!Created[N.index()])
    onCreate(N);
  return N;
}

TypeId SubtransitiveGraph::derivedType(NodeOp Op, NodeId Base,
                                       uint32_t Tag) const {
  const TypeTable &TT = M.types();
  TypeId BaseTy = NodeType[Base.index()];
  switch (Op) {
  case NodeOp::Dom:
    if (BaseTy.isValid() && TT.type(BaseTy).Kind == TypeKind::Arrow)
      return TT.type(BaseTy).Args[0];
    return TypeId::invalid();
  case NodeOp::Ran:
    if (BaseTy.isValid() && TT.type(BaseTy).Kind == TypeKind::Arrow)
      return TT.type(BaseTy).Args[1];
    return TypeId::invalid();
  case NodeOp::RefCell:
    if (BaseTy.isValid() && TT.type(BaseTy).Kind == TypeKind::Ref)
      return TT.type(BaseTy).Args[0];
    return TypeId::invalid();
  case NodeOp::Field:
    if (tagIsTuple(Tag)) {
      if (BaseTy.isValid() && TT.type(BaseTy).Kind == TypeKind::Tuple &&
          tagIndex(Tag) < TT.type(BaseTy).Args.size())
        return TT.type(BaseTy).Args[tagIndex(Tag)];
      return TypeId::invalid();
    }
    return M.con(ConId(tagConOrArity(Tag))).ArgTypes[tagIndex(Tag)];
  default:
    assert(false && "not a derived node op");
    return TypeId::invalid();
  }
}

NodeId SubtransitiveGraph::derived(NodeOp Op, NodeId Base, uint32_t Tag) {
  // All derivatives of Top are Top.
  if (Top.isValid() && Base == Top)
    return Top;

  // Fast path: the (op, base, tag) alias was resolved before.
  switch (Op) {
  case NodeOp::Dom:
    if (NodeId N = DomOf[Base.index()]; N.isValid())
      return N;
    break;
  case NodeOp::Ran:
    if (NodeId N = RanOf[Base.index()]; N.isValid())
      return N;
    break;
  case NodeOp::RefCell:
    if (NodeId N = RefCellOf[Base.index()]; N.isValid())
      return N;
    break;
  case NodeOp::Field:
    for (const auto &[T, N] : FieldsOf[Base.index()])
      if (T == Tag)
        return N;
    break;
  default:
    assert(false && "not a derived node op");
  }

  TypeId Ty = derivedType(Op, Base, Tag);
  NodeId Canonical;
  bool Decon = InvolvesDecon[Base.index()] || Op == NodeOp::Field;
  if (Config.Congruence == CongruenceMode::ByType && isDataType(Ty)) {
    Canonical = getNode(NodeOp::Summary, Ty.index(), 0);
  } else if (Config.Congruence == CongruenceMode::ByBaseAndType &&
             isDataType(Ty) && Decon) {
    Canonical = getNode(NodeOp::Summary2, NodeRoot[Base.index()].index(),
                        Ty.index());
  } else if (NodeDepth[Base.index()] + 1 > Config.MaxNodeDepth) {
    ++Stats.Widenings;
    return topNode();
  } else {
    Canonical = getNode(Op, Base.index(), Tag);
  }

  bool IsNew = !Created[Canonical.index()];
  if (IsNew) {
    NodeType[Canonical.index()] = Ty;
    NodeRoot[Canonical.index()] = op(Canonical) == NodeOp::Summary ||
                                          op(Canonical) == NodeOp::Summary2
                                      ? Canonical
                                      : NodeRoot[Base.index()];
    NodeDepth[Canonical.index()] = NodeDepth[Base.index()] + 1;
    InvolvesDecon[Canonical.index()] = Decon;
  }

  // Fill the cache, registering the (op, base, tag) alias so demand events
  // can scan the base's edges even when several aliases share one
  // canonical node.  (The cache-miss above guarantees this runs once per
  // alias.)
  switch (Op) {
  case NodeOp::Dom:
    DomOf[Base.index()] = Canonical;
    break;
  case NodeOp::Ran:
    RanOf[Base.index()] = Canonical;
    break;
  case NodeOp::RefCell:
    RefCellOf[Base.index()] = Canonical;
    break;
  default:
    FieldsOf[Base.index()].emplace_back(Tag, Canonical);
    break;
  }
  AliasesOf[Canonical.index()].push_back({Op, Base, Tag});
  if (Demanded[Canonical.index()])
    PendingDemand.push_back({Op, Base, Tag});

  if (IsNew)
    onCreate(Canonical);
  return Canonical;
}

NodeId SubtransitiveGraph::lookupLabelNode(LabelId L) const {
  uint32_t Slot = NodeIndex.lookup(nodeKey(NodeOp::Label, L.index(), 0), ~0u);
  return Slot == ~0u ? NodeId::invalid() : NodeId(Slot);
}

NodeId SubtransitiveGraph::lookupDerived(NodeOp Op, NodeId Base,
                                         uint32_t Tag) const {
  if (Top.isValid() && Base == Top)
    return Top;
  switch (Op) {
  case NodeOp::Dom:
    return DomOf[Base.index()];
  case NodeOp::Ran:
    return RanOf[Base.index()];
  case NodeOp::RefCell:
    return RefCellOf[Base.index()];
  case NodeOp::Field:
    for (const auto &[T, N] : FieldsOf[Base.index()])
      if (T == Tag)
        return N;
    return NodeId::invalid();
  default:
    assert(false && "not a derived node op");
    return NodeId::invalid();
  }
}

NodeId SubtransitiveGraph::domNode(NodeId Base) {
  return derived(NodeOp::Dom, Base, 0);
}
NodeId SubtransitiveGraph::ranNode(NodeId Base) {
  return derived(NodeOp::Ran, Base, 0);
}
NodeId SubtransitiveGraph::refCellNode(NodeId Base) {
  return derived(NodeOp::RefCell, Base, 0);
}
NodeId SubtransitiveGraph::conFieldNode(ConId Con, uint32_t Index,
                                        NodeId Base) {
  return derived(NodeOp::Field, Base, packTag(false, Con.index(), Index));
}
NodeId SubtransitiveGraph::tupleFieldNode(uint32_t Index, NodeId Base) {
  return derived(NodeOp::Field, Base, packTag(true, 0, Index));
}

void SubtransitiveGraph::onCreate(NodeId N) {
  Created[N.index()] = true;
  if (Config.Policy != ClosurePolicy::PaperExact)
    setDemanded(N);
  if (Config.Policy == ClosurePolicy::Undemanded)
    materializeTemplate(N);
}

void SubtransitiveGraph::setDemanded(NodeId N) {
  if (Demanded[N.index()])
    return;
  Demanded[N.index()] = true;
  for (const Alias &A : AliasesOf[N.index()])
    PendingDemand.push_back(A);
}

void SubtransitiveGraph::materializeTemplate(NodeId N) {
  uint64_t Key = N.index() + 1;
  if (!MaterializedSet.insert(Key))
    return;
  TypeId Ty = NodeType[N.index()];
  if (!Ty.isValid())
    return;
  const Type &T = M.types().type(Ty);
  switch (T.Kind) {
  case TypeKind::Arrow:
    domNode(N);
    ranNode(N);
    break;
  case TypeKind::Tuple:
    for (uint32_t I = 0; I != T.Args.size(); ++I)
      tupleFieldNode(I, N);
    break;
  case TypeKind::Ref:
    refCellNode(N);
    break;
  case TypeKind::Data:
    if (const DataDecl *D = M.findData(T.Name)) {
      for (ConId C : D->Cons)
        for (uint32_t I = 0; I != M.con(C).ArgTypes.size(); ++I)
          conFieldNode(C, I, N);
    }
    break;
  default:
    break;
  }
}

void SubtransitiveGraph::addEdge(NodeId A, NodeId B) {
  if (A == B)
    return;
  if (Journal)
    Journal->push_back({A, B});
  uint64_t Key = (uint64_t(A.index()) + 1) << 32 | (uint64_t(B.index()) + 1);
  if (!EdgeSet.insert(Key))
    return;
  if (InClosePhase)
    ++Stats.CloseEdges;
  else
    ++Stats.BuildEdges;
  uint32_t E = static_cast<uint32_t>(Edges.size());
  Edges.push_back({A, B, FirstOut[A.index()], FirstIn[B.index()]});
  FirstOut[A.index()] = E;
  FirstIn[B.index()] = E;
  setDemanded(B);
}

LabelId SubtransitiveGraph::labelOf(NodeId N) const {
  switch (op(N)) {
  case NodeOp::Expr: {
    const Expr *E = M.expr(ExprId(PayloadA[N.index()]));
    if (const auto *Lam = dyn_cast<LamExpr>(E))
      return Lam->label();
    return LabelId::invalid();
  }
  case NodeOp::Label:
    return LabelId(PayloadA[N.index()]);
  default:
    return LabelId::invalid();
  }
}

void SubtransitiveGraph::build() {
  assert(!Built && "build() called twice");
  Built = true;
  // Empirically ~1.5 nodes per syntax node on realistic programs (E6).
  reserveNodes(M.numExprs() + M.numExprs() / 2);
  forEachExprPreorder(M, M.root(),
                      [&](ExprId Id, const Expr *E) { buildExpr(Id, E); });
}

void SubtransitiveGraph::buildFragment(ExprId FragmentRoot) {
  assert(!Built && "buildFragment() after build()");
  Built = true;
  forEachExprPreorder(M, FragmentRoot,
                      [&](ExprId Id, const Expr *E) { buildExpr(Id, E); });
}

void SubtransitiveGraph::setExternalizedVars(std::vector<bool> Flags) {
  assert(!Built && "setExternalizedVars() after build()");
  assert(Flags.size() == M.numVars() && "flag vector size mismatch");
  Externalized = std::move(Flags);
}

void SubtransitiveGraph::buildExpr(ExprId Id, const Expr *E) {
  NodeId N = exprNode(Id);
  auto isExternalized = [&](VarId V) {
    return !Externalized.empty() && Externalized[V.index()];
  };
  switch (E->kind()) {
  case ExprKind::Var: {
    VarId V = cast<VarExpr>(E)->var();
    if (!isExternalized(V))
      addEdge(N, varNode(V));
    return;
  }
  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    addEdge(varNode(L->param()), domNode(N)); // ABS-1
    addEdge(ranNode(N), exprNode(L->body())); // ABS-2
    return;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    NodeId Fn = exprNode(A->fn());
    addEdge(domNode(Fn), exprNode(A->arg())); // APP-1
    addEdge(N, ranNode(Fn));                  // APP-2
    return;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    if (!isExternalized(L->var()))
      addEdge(varNode(L->var()), exprNode(L->init()));
    addEdge(N, exprNode(L->body()));
    return;
  }
  case ExprKind::LetRecN: {
    const auto *L = cast<LetRecNExpr>(E);
    for (const LetRecNExpr::Binding &B : L->bindings())
      if (!isExternalized(B.Var))
        addEdge(varNode(B.Var), exprNode(B.Init));
    addEdge(N, exprNode(L->body()));
    return;
  }
  case ExprKind::Lit:
    return;
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    addEdge(N, exprNode(I->thenExpr()));
    addEdge(N, exprNode(I->elseExpr()));
    return;
  }
  case ExprKind::Tuple: {
    const auto *T = cast<TupleExpr>(E);
    for (uint32_t I = 0; I != T->elems().size(); ++I)
      addEdge(tupleFieldNode(I, N), exprNode(T->elems()[I]));
    return;
  }
  case ExprKind::Proj: {
    const auto *P = cast<ProjExpr>(E);
    addEdge(N, tupleFieldNode(P->index(), exprNode(P->tuple())));
    return;
  }
  case ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    for (uint32_t I = 0; I != C->args().size(); ++I)
      addEdge(conFieldNode(C->con(), I, N), exprNode(C->args()[I]));
    return;
  }
  case ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    NodeId Scrut = exprNode(C->scrutinee());
    for (const CaseArm &Arm : C->arms()) {
      addEdge(N, exprNode(Arm.Body));
      for (uint32_t I = 0; I != Arm.Binders.size(); ++I)
        addEdge(varNode(Arm.Binders[I]), conFieldNode(Arm.Con, I, Scrut));
    }
    return;
  }
  case ExprKind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    switch (P->op()) {
    case PrimOp::RefNew:
      addEdge(refCellNode(N), exprNode(P->args()[0]));
      return;
    case PrimOp::RefGet:
      addEdge(N, refCellNode(exprNode(P->args()[0])));
      return;
    case PrimOp::RefSet:
      addEdge(refCellNode(exprNode(P->args()[0])), exprNode(P->args()[1]));
      return;
    default:
      return; // arithmetic/printing produce no tracked values
    }
  }
  }
  assert(false && "unknown expression kind");
}

Status SubtransitiveGraph::close(const Deadline &D,
                                 const CancellationToken &Token) {
  assert(Built && "close() before build()");
  InClosePhase = true;
  Span CloseSpan("close");
  Timer CloseTimer;
  const size_t NodesBefore = Ops.size(), EdgesBefore = Edges.size();
  uint64_t Polls = 0;
  auto finish = [&](Status S) {
    static Counter &Runs = counter("close.runs");
    static Counter &AbortsC = counter("close.aborts");
    static Counter &EdgesAdded = counter("close.edges_added");
    static Counter &NodesAdded = counter("close.nodes_added");
    static Counter &PollsC = counter("close.checkpoint_polls");
    static Histogram &Millis =
        histogram("close.millis", latencyBucketsMillis());
    Runs.inc();
    if (!S.isOk())
      AbortsC.inc();
    EdgesAdded.add(Edges.size() - EdgesBefore);
    NodesAdded.add(Ops.size() - NodesBefore);
    PollsC.add(Polls);
    Millis.observe(static_cast<uint64_t>(CloseTimer.millis()));
    CloseSpan.arg("nodes_added", Ops.size() - NodesBefore);
    CloseSpan.arg("edges_added", Edges.size() - EdgesBefore);
    CloseSpan.arg("checkpoint_polls", Polls);
    CloseSpan.arg("rule_firings", Stats.CloseRuleFirings);
    CloseSpan.arg("status", statusCodeName(S.code()));
    CloseStatus = std::move(S);
    return CloseStatus;
  };
  auto governedStop = [&](Status S) {
    Aborted = true;
    return finish(std::move(S));
  };
  // Budgets are O(1) compares, checked every iteration; the clock, the
  // token, and the fault points are polled once per stride (and on the
  // first iteration, so tiny inputs still hit the checkpoint).
  constexpr uint32_t GovernorStride = 1024;
  uint32_t Stride = 0;
  while (DemandCursor != PendingDemand.size() ||
         NextUnprocessedEdge != Edges.size()) {
    if ((Config.MaxNodes != 0 && Ops.size() > Config.MaxNodes) ||
        faultFires(fault::CloseNodeBudget))
      return governedStop(Status::resourceExhausted(
          "close phase exceeded the node budget (" +
          std::to_string(Config.MaxNodes) + ")"));
    if ((Config.MaxEdges != 0 && Edges.size() > Config.MaxEdges) ||
        faultFires(fault::CloseEdgeBudget))
      return governedStop(Status::resourceExhausted(
          "close phase exceeded the edge budget (" +
          std::to_string(Config.MaxEdges) + ")"));
    if (Stride++ % GovernorStride == 0) {
      ++Polls;
      if (Token.cancelled() || faultFires(fault::CloseCancel))
        return governedStop(Status::cancelled("close phase cancelled"));
      if (D.expired() || faultFires(fault::CloseDeadline))
        return governedStop(
            Status::deadlineExceeded("close phase exceeded its deadline"));
      if (faultFires(fault::CloseAlloc))
        return governedStop(
            Status::outOfMemory("close phase node-arena allocation failed"));
    }
    if (DemandCursor != PendingDemand.size()) {
      Alias A = PendingDemand[DemandCursor++];
      processDemand(A);
      continue;
    }
    const EdgeRec &E = Edges[NextUnprocessedEdge++];
    if (!E.From.isValid())
      continue; // tombstoned by the delta layer's retraction
    processEdge(E.From, E.To);
  }
  Closed = true;
  return finish(Status::ok());
}

void SubtransitiveGraph::processEdge(NodeId A, NodeId B) {
  // CLOSE-DOM': n1 -> n2 with dom(n2) demanded  ==>  dom(n2) -> dom(n1).
  if (NodeId D = DomOf[B.index()]; D.isValid() && Demanded[D.index()]) {
    ++Stats.CloseRuleFirings;
    addEdge(D, domNode(A));
  }
  // CLOSE-RAN': n1 -> n2 with ran(n1) demanded  ==>  ran(n1) -> ran(n2).
  if (NodeId R = RanOf[A.index()]; R.isValid() && Demanded[R.index()]) {
    ++Stats.CloseRuleFirings;
    addEdge(R, ranNode(B));
  }
  // Covariant deconstructor fields (Section 6).  Index-based loop: the
  // vector may grow while we create field nodes over B.
  for (size_t I = 0; I != FieldsOf[A.index()].size(); ++I) {
    auto [Tag, F] = FieldsOf[A.index()][I];
    if (Demanded[F.index()]) {
      ++Stats.CloseRuleFirings;
      addEdge(F, derived(NodeOp::Field, B, Tag));
    }
  }
  // Ref cells are invariant: close in both directions.
  if (NodeId R = RefCellOf[A.index()];
      R.isValid() && Demanded[R.index()]) {
    ++Stats.CloseRuleFirings;
    addEdge(R, refCellNode(B));
  }
  if (NodeId R = RefCellOf[B.index()];
      R.isValid() && Demanded[R.index()]) {
    ++Stats.CloseRuleFirings;
    addEdge(R, refCellNode(A));
  }
}

void SubtransitiveGraph::processDemand(const Alias &A) {
  NodeId Base = A.Base;
  NodeId Canonical = derived(A.Op, Base, A.Tag);
  // New edges prepend to the adjacency lists, so ranges captured here are
  // stable snapshots; edges added later re-fire through the per-edge
  // rules.
  switch (A.Op) {
  case NodeOp::Dom:
    for (NodeId X : preds(Base)) {
      ++Stats.CloseRuleFirings;
      addEdge(Canonical, domNode(X));
    }
    return;
  case NodeOp::Ran:
    for (NodeId Y : succs(Base)) {
      ++Stats.CloseRuleFirings;
      addEdge(Canonical, ranNode(Y));
    }
    return;
  case NodeOp::Field:
    for (NodeId Y : succs(Base)) {
      ++Stats.CloseRuleFirings;
      addEdge(Canonical, derived(NodeOp::Field, Y, A.Tag));
    }
    return;
  case NodeOp::RefCell:
    for (NodeId Y : succs(Base)) {
      ++Stats.CloseRuleFirings;
      addEdge(Canonical, refCellNode(Y));
    }
    for (NodeId X : preds(Base)) {
      ++Stats.CloseRuleFirings;
      addEdge(Canonical, refCellNode(X));
    }
    return;
  default:
    assert(false && "demand event for a non-derived op");
  }
}

void SubtransitiveGraph::removeEdgeForDelta(NodeId A, NodeId B) {
  uint64_t Key = (uint64_t(A.index()) + 1) << 32 | (uint64_t(B.index()) + 1);
  if (!EdgeSet.erase(Key))
    return;
  // Find the pool entry through A's out list and unlink it there.
  uint32_t Idx = NoEdge;
  for (uint32_t *L = &FirstOut[A.index()]; *L != NoEdge;
       L = &Edges[*L].NextOut)
    if (Edges[*L].To == B) {
      Idx = *L;
      *L = Edges[Idx].NextOut;
      break;
    }
  assert(Idx != NoEdge && "edge set and adjacency lists out of sync");
  for (uint32_t *L = &FirstIn[B.index()]; *L != NoEdge; L = &Edges[*L].NextIn)
    if (*L == Idx) {
      *L = Edges[Idx].NextIn;
      break;
    }
  // Tombstone in place; the pool never compacts, so indices stay stable.
  Edges[Idx].From = NodeId::invalid();
  Edges[Idx].To = NodeId::invalid();
}

void SubtransitiveGraph::appendConsequencesForDelta(
    NodeId A, NodeId B, std::vector<std::pair<NodeId, NodeId>> &Out) const {
  // Mirror of `processEdge`: the conclusions each rule family could have
  // drawn from (A, B), restricted to node pairs that were actually
  // materialised.  (The widening path leaves `DomOf`/`RanOf` unfilled for
  // edges into `Top`; the delta layer refuses to run once a Top node
  // exists, so nothing is missed here.)
  if (NodeId DB = DomOf[B.index()]; DB.isValid())
    if (NodeId DA = DomOf[A.index()]; DA.isValid())
      Out.push_back({DB, DA}); // CLOSE-DOM'
  if (NodeId RA = RanOf[A.index()]; RA.isValid())
    if (NodeId RB = RanOf[B.index()]; RB.isValid())
      Out.push_back({RA, RB}); // CLOSE-RAN'
  for (const auto &[Tag, FA] : FieldsOf[A.index()])
    if (NodeId FB = lookupDerived(NodeOp::Field, B, Tag); FB.isValid())
      Out.push_back({FA, FB}); // covariant fields
  if (NodeId CA = RefCellOf[A.index()]; CA.isValid())
    if (NodeId CB = RefCellOf[B.index()]; CB.isValid()) {
      Out.push_back({CA, CB}); // ref cells are invariant:
      Out.push_back({CB, CA}); // both directions
    }
}

void SubtransitiveGraph::requeueAliasesForDelta(NodeId N) {
  for (const Alias &A : AliasesOf[N.index()])
    PendingDemand.push_back(A);
}

void SubtransitiveGraph::notifyModuleGrown() {
  if (NodeOfExpr.size() < M.numExprs())
    NodeOfExpr.resize(M.numExprs(), NodeId::invalid());
  if (NodeOfVar.size() < M.numVars())
    NodeOfVar.resize(M.numVars(), NodeId::invalid());
  if (VarType.size() < M.numVars())
    VarType.resize(M.numVars(), TypeId::invalid());
  if (!Externalized.empty() && Externalized.size() < M.numVars())
    Externalized.resize(M.numVars(), false);
}

std::string SubtransitiveGraph::describe(NodeId N) const {
  switch (op(N)) {
  case NodeOp::Expr:
    return describeExpr(M, ExprId(PayloadA[N.index()]));
  case NodeOp::Var:
    return "var:" + std::string(M.text(M.var(VarId(PayloadA[N.index()])).Name));
  case NodeOp::Dom:
    return "dom(" + describe(NodeId(PayloadA[N.index()])) + ")";
  case NodeOp::Ran:
    return "ran(" + describe(NodeId(PayloadA[N.index()])) + ")";
  case NodeOp::RefCell:
    return "refcell(" + describe(NodeId(PayloadA[N.index()])) + ")";
  case NodeOp::Field: {
    uint32_t Tag = PayloadB[N.index()];
    std::string Head =
        tagIsTuple(Tag)
            ? "#" + std::to_string(tagIndex(Tag) + 1)
            : std::string(M.text(M.con(ConId(tagConOrArity(Tag))).Name)) +
                  "~" + std::to_string(tagIndex(Tag) + 1);
    return Head + "(" + describe(NodeId(PayloadA[N.index()])) + ")";
  }
  case NodeOp::Label:
    return "label:" + std::to_string(PayloadA[N.index()]);
  case NodeOp::Summary:
    return "summary[" +
           M.types().render(TypeId(PayloadA[N.index()]), M.strings()) + "]";
  case NodeOp::Summary2:
    return "summary2[" + describe(NodeId(PayloadA[N.index()])) + ":" +
           M.types().render(TypeId(PayloadB[N.index()]), M.strings()) + "]";
  case NodeOp::Top:
    return "top";
  }
  assert(false && "unknown node op");
  return "?";
}
