//===-- core/LabelSetKernel.cpp - Word-parallel label-set closure ---------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/LabelSetKernel.h"

#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <string>

using namespace stcfa;

LabelSetKernel::LabelSetKernel(const FrozenGraph &F, ThreadPool *Pool,
                               unsigned Threads)
    : F(F), Pool(Pool), Threads(Threads ? Threads : 1),
      RunStatus(Status::failedPrecondition("run() not called")) {}

LabelSetKernel::LabelSetKernel(const FrozenGraph &F, unsigned Threads)
    : F(F), Pool(nullptr), Threads(Threads ? Threads : 1),
      RunStatus(Status::failedPrecondition("run() not called")) {
  if (this->Threads > 1) {
    OwnedPool = std::make_unique<ThreadPool>(this->Threads);
    Pool = OwnedPool.get();
  }
}

LabelSetKernel::LabelSetKernel(const FrozenGraph &F,
                               std::span<const uint64_t> Rows,
                               uint32_t WordsPerSet)
    : F(F), Pool(nullptr), Threads(1), RunStatus(Status::ok()) {
  Cond = &F.condensation();
  this->WordsPerSet = WordsPerSet;
  RowWords = WordsPerSet; // snapshot rows are tight, no cache-line pad
  // The adopted matrix is never written: a born-complete kernel makes
  // `run()` short-circuit before any `rowMut`, so a read-only (mmap)
  // backing is safe behind this cast.
  Matrix = const_cast<uint64_t *>(Rows.data());
  SccLevel.assign(Cond->numSccs(), 0);
  NumLevels = LevelsDone = 1;
  LevelsBuilt = true;
  Ran = true;
}

/// Builds the level schedule and the row matrix.  One ascending-id sweep
/// suffices for levels: SCC ids are in completion order, so every
/// successor component's level is final before its consumers look at it.
Status LabelSetKernel::buildSchedule() {
  // The schedule + matrix allocation is the kernel's one big allocation;
  // the injected-alloc site sits on the same unwind the real bad_alloc
  // guard would take.
  if (faultFires(fault::KernelAlloc))
    return Status::outOfMemory("kernel level-schedule allocation failed");

  Cond = &F.condensation();
  const uint32_t NumNodes = F.numNodes();
  const uint32_t NumSccs = Cond->numSccs();

  // Nodes grouped by component: counting sort into CSR.
  SccNodeOffsets.assign(NumSccs + 1, 0);
  for (uint32_t N = 0; N != NumNodes; ++N)
    ++SccNodeOffsets[Cond->sccOf(N) + 1];
  for (uint32_t S = 0; S != NumSccs; ++S)
    SccNodeOffsets[S + 1] += SccNodeOffsets[S];
  SccNodes.resize(NumNodes);
  {
    std::vector<uint32_t> Fill(SccNodeOffsets.begin(),
                               SccNodeOffsets.end() - 1);
    for (uint32_t N = 0; N != NumNodes; ++N)
      SccNodes[Fill[Cond->sccOf(N)]++] = N;
  }

  // Level of a component = 1 + max level of its successor components
  // (sinks at level 0).  Cross-component edges always point to strictly
  // smaller levels, which is the no-races-within-a-level invariant the
  // parallel sweep relies on.
  const uint32_t *Off = F.outOffsets();
  const uint32_t *Tgt = F.outTargets();
  SccLevel.assign(NumSccs, 0);
  NumLevels = 0;
  for (uint32_t Scc = 0; Scc != NumSccs; ++Scc) {
    uint32_t Lv = 0;
    for (uint32_t I = SccNodeOffsets[Scc], E = SccNodeOffsets[Scc + 1]; I != E;
         ++I) {
      uint32_t N = SccNodes[I];
      for (uint32_t J = Off[N], JE = Off[N + 1]; J != JE; ++J) {
        uint32_t S = Cond->sccOf(Tgt[J]);
        if (S != Scc)
          Lv = std::max(Lv, SccLevel[S] + 1);
      }
    }
    SccLevel[Scc] = Lv;
    NumLevels = std::max(NumLevels, Lv + 1);
  }

  // Components bucketed by level: counting sort into CSR.
  LevelOffsets.assign(NumLevels + 1, 0);
  for (uint32_t Scc = 0; Scc != NumSccs; ++Scc)
    ++LevelOffsets[SccLevel[Scc] + 1];
  for (uint32_t Lv = 0; Lv != NumLevels; ++Lv)
    LevelOffsets[Lv + 1] += LevelOffsets[Lv];
  LevelComps.resize(NumSccs);
  {
    std::vector<uint32_t> Fill(LevelOffsets.begin(), LevelOffsets.end() - 1);
    for (uint32_t Scc = 0; Scc != NumSccs; ++Scc)
      LevelComps[Fill[SccLevel[Scc]]++] = Scc;
  }

  // The matrix: rows padded to whole cache lines (multiples of 8 words)
  // and the base 64-byte aligned into an over-allocated store, so two
  // lanes finalizing different components never touch the same line.
  WordsPerSet = (F.numLabels() + 63) / 64;
  RowWords = (WordsPerSet + 7) & ~7u;
  size_t Need = size_t(NumSccs) * RowWords;
  MatrixStore.assign(Need + 7, 0);
  Matrix = reinterpret_cast<uint64_t *>(
      (reinterpret_cast<uintptr_t>(MatrixStore.data()) + 63) &
      ~uintptr_t(63));

  LevelsBuilt = true;
  return Status::ok();
}

/// Finalizes one component's row: set the bits of labels carried by its
/// own nodes, then OR in every successor component's (already final) row.
void LabelSetKernel::closeComponent(uint32_t Scc) {
  uint64_t *R = rowMut(Scc);
  const uint32_t *Off = F.outOffsets();
  const uint32_t *Tgt = F.outTargets();
  const uint32_t *Lab = F.labelArray();
  const uint32_t W = WordsPerSet;
  uint64_t WordOrs = 0; // accumulated locally; one counter add per component
  for (uint32_t I = SccNodeOffsets[Scc], E = SccNodeOffsets[Scc + 1]; I != E;
       ++I) {
    uint32_t N = SccNodes[I];
    if (uint32_t L = Lab[N]; L != FrozenGraph::None)
      R[L / 64] |= uint64_t(1) << (L % 64);
    for (uint32_t J = Off[N], JE = Off[N + 1]; J != JE; ++J) {
      uint32_t S = Cond->sccOf(Tgt[J]);
      if (S == Scc)
        continue;
      const uint64_t *SR = row(S);
      for (uint32_t K = 0; K != W; ++K)
        R[K] |= SR[K];
      WordOrs += W;
    }
  }
  static Counter &WordOrsC = counter("kernel.word_ors");
  static Counter &Rows = counter("kernel.rows_finalized");
  WordOrsC.add(WordOrs);
  Rows.inc();
}

Status LabelSetKernel::run(const Controls &C) {
  if (complete())
    return RunStatus;
  Span RunSpan("kernel.run");
  Timer T;
  static Counter &Runs = counter("kernel.runs");
  static Counter &Aborts = counter("kernel.aborts");
  static Counter &Levels = counter("kernel.levels_completed");
  static Histogram &Millis =
      histogram("kernel.millis", latencyBucketsMillis());
  Runs.inc();
  const uint32_t LevelsBefore = LevelsDone;
  auto finish = [&](Status S) {
    if (!S.isOk())
      Aborts.inc();
    Levels.add(LevelsDone - LevelsBefore);
    Millis.observe(static_cast<uint64_t>(T.millis()));
    RunSpan.arg("levels_total", NumLevels);
    RunSpan.arg("levels_done", LevelsDone);
    RunSpan.arg("status", statusCodeName(S.code()));
    Ran = true;
    RunStatus = std::move(S);
    ClosureMs += T.millis();
    return RunStatus;
  };
  if (!LevelsBuilt) {
    Status S = buildSchedule();
    if (!S.isOk())
      return finish(std::move(S));
  }
  RunSpan.arg("sccs", Cond->numSccs());

  // One governor checkpoint per level; the word loops stay check-free.
  // `LevelsDone` only advances past a level's barrier, so an abort here
  // leaves every component below it final — that is the whole partial-
  // result contract.
  while (LevelsDone != NumLevels) {
    uint32_t Lv = LevelsDone;
    if (C.Token.cancelled() || faultFires(fault::KernelLevelCancel))
      return finish(Status::cancelled("label-set kernel cancelled at level " +
                                      std::to_string(Lv) + " of " +
                                      std::to_string(NumLevels)));
    if (C.D.expired())
      return finish(
          Status::deadlineExceeded("label-set kernel exceeded its deadline "
                                   "at level " +
                                   std::to_string(Lv) + " of " +
                                   std::to_string(NumLevels)));

    size_t Begin = LevelOffsets[Lv], End = LevelOffsets[Lv + 1];
    Span LevelSpan("kernel.level");
    LevelSpan.arg("level", Lv);
    LevelSpan.arg("components", End - Begin);
    if (Pool && Threads > 1 && End - Begin > 1) {
      // `parallelFor` is the per-level barrier: it returns only after
      // every component in the level is final, and its internal
      // synchronisation orders those writes before the next level's
      // reads (TSan-clean cross-level row reuse).
      Pool->parallelFor(End - Begin, [&](unsigned, size_t I) {
        closeComponent(LevelComps[Begin + I]);
      });
    } else {
      for (size_t I = Begin; I != End; ++I)
        closeComponent(LevelComps[I]);
    }
    ++LevelsDone;
  }

  // The corruption canary: a silently wrong row, so the differential
  // fuzz suite can prove it would catch a kernel bug.  Applied only on a
  // *successful* run — an aborted kernel falls back to BFS and a corrupt
  // row would never be read.
  if (faultFires(fault::KernelRowCorrupt) && WordsPerSet != 0) {
    for (uint32_t I = 0, E = F.numExprs(); I != E; ++I) {
      uint32_t N = F.nodeOfExpr(ExprId(I));
      if (N == FrozenGraph::None)
        continue;
      rowMut(Cond->sccOf(N))[0] ^= 1;
      break;
    }
  }

  return finish(Status::ok());
}

DenseBitset LabelSetKernel::labelsOfNode(uint32_t N) const {
  DenseBitset Out(F.numLabels());
  if (nodeComplete(N))
    Out.orWords(row(Cond->sccOf(N)), WordsPerSet);
  return Out;
}

DenseBitset LabelSetKernel::labelsOf(ExprId E) const {
  uint32_t N = F.nodeOfExpr(E);
  if (N == FrozenGraph::None)
    return DenseBitset(F.numLabels());
  return labelsOfNode(N);
}
