//===-- core/LabelSetKernel.cpp - Word-parallel label-set closure ---------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/LabelSetKernel.h"

#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/SimdOps.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <string>

using namespace stcfa;

LabelSetKernel::LabelSetKernel(const FrozenGraph &F, ThreadPool *Pool,
                               unsigned Threads)
    : F(F), Pool(Pool), Threads(Threads ? Threads : 1),
      RunStatus(Status::failedPrecondition("run() not called")) {}

LabelSetKernel::LabelSetKernel(const FrozenGraph &F, unsigned Threads)
    : F(F), Pool(nullptr), Threads(Threads ? Threads : 1),
      RunStatus(Status::failedPrecondition("run() not called")) {
  if (this->Threads > 1) {
    OwnedPool = std::make_unique<ThreadPool>(this->Threads);
    Pool = OwnedPool.get();
  }
}

LabelSetKernel::LabelSetKernel(const FrozenGraph &F,
                               std::span<const uint64_t> Rows,
                               uint32_t WordsPerSet)
    : F(F), Pool(nullptr), Threads(1), RunStatus(Status::ok()) {
  Cond = &F.condensation();
  this->WordsPerSet = WordsPerSet;
  RowWords = WordsPerSet; // snapshot rows are tight, no cache-line pad
  // The adopted matrix is never written: a born-complete kernel makes
  // `run()` short-circuit before any `rowMut`, so a read-only (mmap)
  // backing is safe behind this cast.
  Matrix = const_cast<uint64_t *>(Rows.data());
  SccLevel.assign(Cond->numSccs(), 0);
  NumLevels = LevelsDone = 1;
  ChunkLevelOffsets = {0, 1}; // one trivial, already-complete chunk
  ChunksDone = 1;
  LevelsBuilt = true;
  Ran = true;
}

/// Builds the level schedule and the row matrix.  One ascending-id sweep
/// suffices for levels: SCC ids are in completion order, so every
/// successor component's level is final before its consumers look at it.
Status LabelSetKernel::buildSchedule() {
  // The schedule + matrix allocation is the kernel's one big allocation;
  // the injected-alloc site sits on the same unwind the real bad_alloc
  // guard would take.
  if (faultFires(fault::KernelAlloc))
    return Status::outOfMemory("kernel level-schedule allocation failed");

  Cond = &F.condensation();
  const uint32_t NumNodes = F.numNodes();
  const uint32_t NumSccs = Cond->numSccs();

  // Nodes grouped by component: counting sort into CSR.
  SccNodeOffsets.assign(NumSccs + 1, 0);
  for (uint32_t N = 0; N != NumNodes; ++N)
    ++SccNodeOffsets[Cond->sccOf(N) + 1];
  for (uint32_t S = 0; S != NumSccs; ++S)
    SccNodeOffsets[S + 1] += SccNodeOffsets[S];
  SccNodes.resize(NumNodes);
  {
    std::vector<uint32_t> Fill(SccNodeOffsets.begin(),
                               SccNodeOffsets.end() - 1);
    for (uint32_t N = 0; N != NumNodes; ++N)
      SccNodes[Fill[Cond->sccOf(N)]++] = N;
  }

  // Level of a component = 1 + max level of its successor components
  // (sinks at level 0).  Cross-component edges always point to strictly
  // smaller levels, which is the no-races-within-a-level invariant the
  // parallel sweep relies on.  The same sweep reads each component's
  // *reader* count off the reverse CSR (`InReads`, the summed in-degree
  // of its nodes — intra-component predecessors included, which only
  // inflates the count and keeps the sum a pure sequential-read
  // reduction rather than per-edge scattered increments), the profile
  // that drives the row layout below.
  const uint32_t *Off = F.outOffsets();
  const uint32_t *Tgt = F.outTargets();
  const uint32_t *InOff = F.inOffsets();
  SccLevel.assign(NumSccs, 0);
  std::vector<uint32_t> InReads(NumSccs);
  NumLevels = 0;
  for (uint32_t Scc = 0; Scc != NumSccs; ++Scc) {
    uint32_t Lv = 0;
    uint32_t Reads = 0;
    for (uint32_t I = SccNodeOffsets[Scc], E = SccNodeOffsets[Scc + 1]; I != E;
         ++I) {
      uint32_t N = SccNodes[I];
      Reads += InOff[N + 1] - InOff[N];
      for (uint32_t J = Off[N], JE = Off[N + 1]; J != JE; ++J) {
        uint32_t S = Cond->sccOf(Tgt[J]);
        if (S != Scc)
          Lv = std::max(Lv, SccLevel[S] + 1);
      }
    }
    InReads[Scc] = Reads;
    SccLevel[Scc] = Lv;
    NumLevels = std::max(NumLevels, Lv + 1);
  }

  // Components bucketed by level: counting sort into CSR.
  LevelOffsets.assign(NumLevels + 1, 0);
  for (uint32_t Scc = 0; Scc != NumSccs; ++Scc)
    ++LevelOffsets[SccLevel[Scc] + 1];
  for (uint32_t Lv = 0; Lv != NumLevels; ++Lv)
    LevelOffsets[Lv + 1] += LevelOffsets[Lv];
  LevelComps.resize(NumSccs);
  {
    std::vector<uint32_t> Fill(LevelOffsets.begin(), LevelOffsets.end() - 1);
    for (uint32_t Scc = 0; Scc != NumSccs; ++Scc)
      LevelComps[Fill[SccLevel[Scc]]++] = Scc;
  }

  // Profile-guided row layout: within each level, order components by
  // how many cross-edges read them (hottest first, ties in id order so
  // the layout is deterministic).  Rows are then assigned in this
  // level-major order, so a chunk's sequential sweep writes contiguous
  // lines and every level's most-re-read rows sit packed at its front,
  // still warm when the next level ORs them in.  `LevelComps` itself is
  // reordered too — execution order within a level is free.  A stable
  // counting sort on the read count capped at 63 (separating the
  // re-read rows from the rest is what matters, not a total order of
  // the long tail): a comparison sort here costs more than the whole
  // rest of the schedule build, and the cap keeps it O(n) — no
  // comparisons, no per-level allocations.
  {
    constexpr uint32_t ReadBuckets = 64;
    auto Key = [&InReads](uint32_t C) {
      return std::min(InReads[C], ReadBuckets - 1);
    };
    // Per-level key range, one *sequential* pass over components:
    // levels whose rows are all equally hot (the norm in regular
    // condensations like the cubic family) have nothing to reorder and
    // are skipped below without ever touching their components again.
    std::vector<uint32_t> LvLo(NumLevels, ReadBuckets), LvHi(NumLevels, 0);
    for (uint32_t Scc = 0; Scc != NumSccs; ++Scc) {
      uint32_t K = Key(Scc), Lv = SccLevel[Scc];
      LvLo[Lv] = std::min(LvLo[Lv], K);
      LvHi[Lv] = std::max(LvHi[Lv], K);
    }
    std::vector<uint32_t> Scratch; // sized on first non-uniform level
    uint32_t Count[ReadBuckets];
    for (uint32_t Lv = 0; Lv != NumLevels; ++Lv) {
      if (LvLo[Lv] >= LvHi[Lv])
        continue; // uniform (or empty) level
      uint32_t B = LevelOffsets[Lv], E = LevelOffsets[Lv + 1];
      if (Scratch.empty())
        Scratch.resize(NumSccs);
      std::fill(Count, Count + ReadBuckets, 0);
      for (uint32_t I = B; I != E; ++I)
        ++Count[Key(LevelComps[I])];
      uint32_t Pos = 0; // hottest bucket first
      for (uint32_t K = ReadBuckets; K-- != 0;) {
        uint32_t N = Count[K];
        Count[K] = Pos;
        Pos += N;
      }
      for (uint32_t I = B; I != E; ++I)
        Scratch[Count[Key(LevelComps[I])]++] = LevelComps[I];
      std::copy(Scratch.begin(), Scratch.begin() + (E - B),
                LevelComps.begin() + B);
    }
  }
  // The row permutation, then its node-level fusion (sccOf∘RowOf
  // precomputed) so the close loop maps an edge target to its row with
  // a single load — the permutation must not cost the hot loop a second
  // dependent lookup.  `NodeRow` is deliberately uninitialized storage:
  // every node is written exactly once by the streaming fill.
  RowOf.assign(NumSccs, 0);
  for (uint32_t I = 0; I != NumSccs; ++I)
    RowOf[LevelComps[I]] = I;
  NodeRow = std::make_unique_for_overwrite<uint32_t[]>(NumNodes);
  const uint32_t *SccOfRaw = Cond->map().data();
  for (uint32_t N = 0; N != NumNodes; ++N)
    NodeRow[N] = RowOf[SccOfRaw[N]];

  // Chunking: merge consecutive levels while the running row total stays
  // within `ChunkRows`.  A merged chunk runs sequentially (its levels
  // depend on each other), trading dead parallelism on tiny levels for
  // one barrier + one governor poll per chunk instead of per level.  A
  // level too big to merge stands alone and fans out across the pool.
  // With `ChunkRows` <= 1 every level is its own chunk.
  ChunkLevelOffsets.clear();
  ChunkLevelOffsets.push_back(0);
  if (NumLevels != 0) {
    uint32_t RowsInChunk = 0;
    for (uint32_t Lv = 0; Lv != NumLevels; ++Lv) {
      uint32_t Rows = LevelOffsets[Lv + 1] - LevelOffsets[Lv];
      if (Lv != ChunkLevelOffsets.back() && RowsInChunk + Rows > ChunkRows) {
        ChunkLevelOffsets.push_back(Lv);
        RowsInChunk = 0;
      }
      RowsInChunk += Rows;
    }
    ChunkLevelOffsets.push_back(NumLevels);
  }

  // The matrix: rows padded to whole cache lines (multiples of 8 words)
  // and the base 64-byte aligned into an over-allocated store, so two
  // lanes finalizing different components never touch the same line.
  WordsPerSet = (F.numLabels() + 63) / 64;
  RowWords = (WordsPerSet + 7) & ~7u;
  size_t Need = size_t(NumSccs) * RowWords;
  MatrixStore.assign(Need + 7, 0);
  Matrix = reinterpret_cast<uint64_t *>(
      (reinterpret_cast<uintptr_t>(MatrixStore.data()) + 63) &
      ~uintptr_t(63));

  LevelsBuilt = true;
  return Status::ok();
}

/// Finalizes one component's row: set the bits of labels carried by its
/// own nodes, then OR in every successor component's (already final)
/// row.  Word-OR work is summed into \p WordOrs, never into the global
/// counter: with thousands of tiny components the per-component atomic
/// flushes would rival the closure itself, so the caller flushes once
/// per chunk (per lane when fanned out).
void LabelSetKernel::closeComponent(uint32_t Scc, uint64_t &WordOrs) {
  const uint32_t MyRow = static_cast<uint32_t>(rowIndex(Scc));
  uint64_t *R = Matrix + size_t(MyRow) * RowWords;
  const uint32_t *Off = F.outOffsets();
  const uint32_t *Tgt = F.outTargets();
  const uint32_t *Lab = F.labelArray();
  const uint32_t *NR = NodeRow.get();
  const uint32_t W = WordsPerSet;
  for (uint32_t I = SccNodeOffsets[Scc], E = SccNodeOffsets[Scc + 1]; I != E;
       ++I) {
    uint32_t N = SccNodes[I];
    if (uint32_t L = Lab[N]; L != FrozenGraph::None)
      R[L / 64] |= uint64_t(1) << (L % 64);
    for (uint32_t J = Off[N], JE = Off[N + 1]; J != JE; ++J) {
      uint32_t RS = NR[Tgt[J]];
      if (RS == MyRow)
        continue;
      // The hot loop of the whole kernel: one dispatched row-OR (AVX-512
      // / AVX2 / scalar — see support/SimdOps.h) per cross-edge.
      simd::orWords(R, Matrix + size_t(RS) * RowWords, W);
      WordOrs += W;
    }
  }
}

Status LabelSetKernel::run(const Controls &C) {
  if (complete())
    return RunStatus;
  Span RunSpan("kernel.run");
  Timer T;
  static Counter &Runs = counter("kernel.runs");
  static Counter &Aborts = counter("kernel.aborts");
  static Counter &Levels = counter("kernel.levels_completed");
  static Counter &Chunks = counter("kernel.chunks_completed");
  static Counter &WordOrsC = counter("kernel.word_ors");
  static Counter &RowsC = counter("kernel.rows_finalized");
  static Gauge &SimdPath = gauge("kernel.simd_path");
  static Histogram &Millis =
      histogram("kernel.millis", latencyBucketsMillis());
  Runs.inc();
  SimdPath.set(static_cast<int64_t>(simd::activePath()));
  const uint32_t LevelsBefore = LevelsDone;
  const uint32_t ChunksBefore = ChunksDone;
  auto finish = [&](Status S) {
    if (!S.isOk())
      Aborts.inc();
    Levels.add(LevelsDone - LevelsBefore);
    Chunks.add(ChunksDone - ChunksBefore);
    Millis.observe(static_cast<uint64_t>(T.millis()));
    RunSpan.arg("levels_total", NumLevels);
    RunSpan.arg("levels_done", LevelsDone);
    RunSpan.arg("chunks_total", numChunks());
    RunSpan.arg("chunks_done", ChunksDone);
    RunSpan.arg("status", statusCodeName(S.code()));
    Ran = true;
    RunStatus = std::move(S);
    ClosureMs += T.millis();
    return RunStatus;
  };
  if (!LevelsBuilt)
    if (Status S = buildSchedule(); !S.isOk())
      return finish(std::move(S));
  RunSpan.arg("sccs", Cond->numSccs());

  // One governor checkpoint per *chunk*; the word loops stay check-free.
  // `LevelsDone` only advances past a chunk's barrier, so an abort here
  // leaves every component below it final — that is the whole partial-
  // result contract.  Resume points are chunk boundaries: `ChunksDone`
  // indexes the first unfinished chunk.
  while (ChunksDone != numChunks()) {
    uint32_t Lv = LevelsDone;
    if (C.Token.cancelled() || faultFires(fault::KernelLevelCancel))
      return finish(Status::cancelled("label-set kernel cancelled at level " +
                                      std::to_string(Lv) + " of " +
                                      std::to_string(NumLevels)));
    if (C.D.expired())
      return finish(
          Status::deadlineExceeded("label-set kernel exceeded its deadline "
                                   "at level " +
                                   std::to_string(Lv) + " of " +
                                   std::to_string(NumLevels)));

    uint32_t LvEnd = ChunkLevelOffsets[ChunksDone + 1];
    size_t Begin = LevelOffsets[Lv], End = LevelOffsets[LvEnd];
    Span ChunkSpan("kernel.chunk");
    ChunkSpan.arg("chunk", ChunksDone);
    ChunkSpan.arg("levels", LvEnd - Lv);
    ChunkSpan.arg("components", End - Begin);
    if (LvEnd - Lv == 1 && Pool && Threads > 1 && End - Begin > 1) {
      // A single-level chunk is embarrassingly parallel; `parallelFor`
      // is the barrier: it returns only after every component in the
      // level is final, and its internal synchronisation orders those
      // writes before the next chunk's reads (TSan-clean cross-level
      // row reuse).  Word-OR work accumulates per lane (padded to a
      // cache line each, so lanes never bounce the accumulator line)
      // and flushes once after the barrier.
      struct alignas(64) LaneOrs {
        uint64_t V = 0;
      };
      std::vector<LaneOrs> Lane(Threads);
      Pool->parallelFor(End - Begin, [&](unsigned L, size_t I) {
        closeComponent(LevelComps[Begin + I], Lane[L].V);
      });
      uint64_t WordOrs = 0;
      for (const LaneOrs &L : Lane)
        WordOrs += L.V;
      WordOrsC.add(WordOrs);
    } else {
      // A merged chunk carries cross-level dependencies, so it runs as
      // one sequential task — `LevelComps` is level-major, so plain
      // ascending order closes each level before its consumers, and the
      // row layout makes this a contiguous forward sweep of the matrix.
      uint64_t WordOrs = 0;
      for (size_t I = Begin; I != End; ++I)
        closeComponent(LevelComps[I], WordOrs);
      WordOrsC.add(WordOrs);
    }
    RowsC.add(End - Begin);
    LevelsDone = LvEnd;
    ++ChunksDone;
  }

  // The corruption canary: a silently wrong row, so the differential
  // fuzz suite can prove it would catch a kernel bug.  Applied only on a
  // *successful* run — an aborted kernel falls back to BFS and a corrupt
  // row would never be read.
  if (faultFires(fault::KernelRowCorrupt) && WordsPerSet != 0) {
    for (uint32_t I = 0, E = F.numExprs(); I != E; ++I) {
      uint32_t N = F.nodeOfExpr(ExprId(I));
      if (N == FrozenGraph::None)
        continue;
      rowMut(Cond->sccOf(N))[0] ^= 1;
      break;
    }
  }

  return finish(Status::ok());
}

DenseBitset LabelSetKernel::labelsOfNode(uint32_t N) const {
  DenseBitset Out(F.numLabels());
  if (nodeComplete(N))
    Out.orWords(row(Cond->sccOf(N)), WordsPerSet);
  return Out;
}

DenseBitset LabelSetKernel::labelsOf(ExprId E) const {
  uint32_t N = F.nodeOfExpr(E);
  if (N == FrozenGraph::None)
    return DenseBitset(F.numLabels());
  return labelsOfNode(N);
}
