//===-- serve/Server.h - The stcfa analysis daemon --------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `stcfa --serve`: a long-running daemon speaking newline-delimited
/// JSON-RPC over a pair of file descriptors (stdin/stdout from the
/// driver; pipes from the tests).  See docs/SERVE.md for the protocol.
///
/// Structure:
///
///   * one reader thread (the caller of `run()`) accepts lines through a
///     size-capped buffer, parses and validates them, and handles
///     `load`/`metrics`/`shutdown` inline;
///   * `query`/`lint` requests resolve their epoch *at accept time* and
///     run on a small worker pool, so a `load` installing epoch N+1
///     never changes the answers of requests already admitted against
///     epoch N;
///   * an admission controller bounds the in-flight cost (governor node
///     units): over the soft budget requests are served by the partial
///     rung (universal sets, marked `"degraded":true`), over the hard
///     budget (2x) they are shed with `resource-exhausted`;
///   * replies serialize on a write mutex — one line each, whatever
///     thread finished first.
///
/// Fault sites `serve.accept-alloc`, `serve.request-parse`, and
/// `serve.reply-write` sit on the reader, parser, and writer paths; all
/// three degrade into structured error replies (the writer falls back to
/// a static preformatted line), never a crash.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SERVE_SERVER_H
#define STCFA_SERVE_SERVER_H

#include "delta/DeltaSession.h"
#include "serve/Epoch.h"
#include "serve/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace stcfa {
namespace serve {

/// Daemon configuration, fixed for the server's lifetime.
struct ServeOptions {
  /// Query-engine lanes and worker-thread count.
  unsigned Threads = 1;
  /// Batched-query kernel dispatch threshold; <0 = engine default.
  int64_t KernelThreshold = -1;
  /// Default per-request deadline when the request names none; <0 = none.
  int64_t DefaultDeadlineMs = -1;
  /// Admission soft budget in governor node units (in-flight epoch
  /// nodes).  Above it requests degrade; above twice it they shed.
  uint64_t MaxInflightCost = 4u << 20;
  /// Longest accepted request line; longer lines are drained and
  /// answered with `invalid-argument`.
  uint64_t MaxRequestBytes = 32u << 20;
  /// Write-through snapshot cache: `load` fills it on a miss and maps it
  /// on a hit, so a restarted daemon warms up without re-analysis.
  bool SnapshotCache = false;
  std::string SnapshotDir;
  /// Cache size cap enforced after each fill (LRU by mtime); 0 = uncapped.
  uint64_t SnapshotCacheMaxBytes = 512u << 20;
  /// Hybrid ladder mode for `load`: "off", "standard", or "partial".
  std::string Degrade = "standard";
  bool Stats = false;
};

/// Cost-based admission: `Full` under the soft budget, `Degraded` up to
/// the hard budget (2x soft), `Shed` beyond.  Thread-safe.
class Admission {
public:
  explicit Admission(uint64_t SoftBudget) : Soft(SoftBudget) {}

  enum class Decision : uint8_t { Full, Degraded, Shed };

  /// Tries to admit \p Cost units; on `Shed` nothing was added and
  /// `release` must not be called.
  Decision admit(uint64_t Cost);
  void release(uint64_t Cost);

  uint64_t inflight() const {
    return Inflight.load(std::memory_order_relaxed);
  }

private:
  uint64_t Soft;
  std::atomic<uint64_t> Inflight{0};
};

/// The daemon.  Construct with the two protocol descriptors and call
/// `run()` on the accepting thread; it returns the process exit code
/// after `shutdown` or EOF.
class Server {
public:
  Server(int InFd, int OutFd, ServeOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// The accept loop; returns 0 on clean shutdown/EOF.
  int run();

private:
  //===--- accept path ----------------------------------------------------//
  /// Reads one newline-terminated line into \p Line (without the
  /// newline).  Returns false on EOF with an empty remainder.  Oversized
  /// or allocation-faulted lines are drained to their newline and
  /// reported through \p LineStatus; the reader stays in sync.
  bool readLine(std::string &Line, Status &LineStatus);
  void handleLine(const std::string &Line);
  void dispatch(ServeRequest Req);

  //===--- verbs ----------------------------------------------------------//
  void handleLoad(const ServeRequest &Req);
  /// Runs inline on the reader thread, like `load`: an edit installs the
  /// next epoch, so it must serialize against other installs anyway.
  /// Queries already dispatched keep answering from the epoch they bound
  /// at accept time.
  void handleEdit(const ServeRequest &Req);
  void handleMetrics(const ServeRequest &Req);
  /// Runs on a worker.  \p E is the epoch resolved at accept time;
  /// \p Degraded carries the admission decision.
  void handleQuery(const ServeRequest &Req, const std::shared_ptr<Epoch> &E,
                   bool Degraded);
  void handleLint(const ServeRequest &Req, const std::shared_ptr<Epoch> &E);

  //===--- plumbing -------------------------------------------------------//
  /// Full parse -> infer -> hybrid-solve -> install over \p Source: the
  /// edit path's fallback when the delta session cannot serve
  /// incrementally.  Deliberately bypasses the snapshot cache — these
  /// reloads are transient mid-edit states.
  Status installFullEpoch(const std::string &Source, const Deadline &D,
                          std::shared_ptr<Epoch> &Out);
  Deadline requestDeadline(const ServeRequest &Req) const;
  void reply(const std::string &Line);
  void replyError(const JsonValue &Id, const Status &S);
  void enqueue(std::function<void()> Job);
  void drainWorkers();

  int InFd, OutFd;
  ServeOptions Opts;
  EpochManager Epochs;
  Admission Gate;

  std::mutex WriteMu;

  // Worker pool: a plain queue; the pool is tiny and requests are
  // coarse, so contention on one mutex is irrelevant.
  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::condition_variable IdleCv;
  std::deque<std::function<void()>> Queue;
  unsigned Busy = 0;
  bool Stopping = false;
  std::vector<std::thread> Workers;

  // Edit-delta state (reader thread only): the session is created lazily
  // from the last successfully loaded source on the first `edit`, and a
  // new `load` discards it (the client chose a fresh program).
  std::unique_ptr<DeltaSession> Session;
  std::string LoadedSource;

  // Reader-side line buffer; carries bytes across read() chunks.
  std::string Pending;
  bool SawEof = false;
  bool ShutdownRequested = false;
};

} // namespace serve
} // namespace stcfa

#endif // STCFA_SERVE_SERVER_H
