//===-- serve/Epoch.h - Versioned analysis epochs for serve mode *- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An `Epoch` is one immutable loaded analysis: the parsed module plus
/// either a live hybrid pipeline (cache miss — the degradation ladder
/// decides which engine serves) or an mmap-backed snapshot with its
/// query engine (cache hit — the crash-safe warm-restart path).  Epochs
/// are reference-counted via `shared_ptr`: a `load` installs a new epoch
/// while requests already dispatched keep answering against the one they
/// resolved at accept time; the old mapping is unmapped when the last
/// such reference drains (watch the `serve.epochs_live` gauge).
///
/// Query entry points serialize on an internal mutex — `QueryEngine` is
/// explicitly not re-entrant from multiple external threads, and the
/// daemon's worker pool is exactly such a caller.  Batched work still
/// shards across the engine's own lanes under the lock.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SERVE_EPOCH_H
#define STCFA_SERVE_EPOCH_H

#include "analysis/HybridCFA.h"
#include "ast/Module.h"
#include "core/QueryEngine.h"
#include "delta/DeltaSession.h"
#include "lint/LintEngine.h"
#include "snapshot/Snapshot.h"
#include "support/Deadline.h"
#include "support/Status.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stcfa {
namespace serve {

/// One loaded program at one version.  Immutable after construction
/// apart from the engine's internal scratch (guarded by `Mu`).
class Epoch {
public:
  /// Live-pipeline epoch: \p H has been solved (some rung served).
  Epoch(uint64_t Id, std::unique_ptr<Module> M, std::unique_ptr<HybridCFA> H);

  /// Mapped epoch: \p Snap passed validation and content-hash checks and
  /// was frozen from a module with \p M's shape.  The persisted kernel
  /// rows, when present, are adopted as the batch backend.
  Epoch(uint64_t Id, std::unique_ptr<Module> M,
        std::unique_ptr<LoadedSnapshot> Snap, unsigned Threads,
        size_t KernelThreshold);

  /// Delta epoch: published by an incremental `edit`.  The view's frozen
  /// snapshot uses the edit session's internal (shadow) numbering;
  /// queries translate between it and the canonical ids clients speak
  /// through the view's id maps.  There is no module — lint is
  /// unavailable until the next full load.
  Epoch(uint64_t Id, DeltaView V, unsigned Threads, size_t KernelThreshold);

  ~Epoch();

  Epoch(const Epoch &) = delete;
  Epoch &operator=(const Epoch &) = delete;

  uint64_t id() const { return EpochId; }
  const Module &module() const { return *M; }

  /// The serving engine: "snapshot" for a mapped epoch, else the hybrid
  /// ladder's rung ("subtransitive", "standard", "partial").
  const char *engine() const;

  /// The CSR snapshot behind the query engine; null when the ladder
  /// degraded past the subtransitive rung (no frozen tables exist).
  const FrozenGraph *frozen() const;

  /// Admission cost in governor node units: CSR nodes when frozen,
  /// occurrence count under a degraded engine (its table reads scale
  /// with the program, not a graph).
  uint64_t cost() const;

  /// Canonical program shape (what clients address); for a delta epoch
  /// these come from the view, not a module.
  uint32_t numExprs() const { return CanonExprs; }
  uint32_t numLabels() const { return CanonLabels; }
  ExprId root() const { return RootId; }

  //===--- queries (thread-safe; serialized on the epoch mutex) ----------//

  Status labelsOf(ExprId E, const Deadline &D, DenseBitset &Out);
  Status isLabelIn(ExprId E, LabelId L, const Deadline &D, bool &Out);
  Status occurrencesOf(LabelId L, const Deadline &D,
                       std::vector<ExprId> &Out);
  /// One set per occurrence; `Done[I]` false for slots a governed batch
  /// left unanswered (status then says why).
  Status allLabels(const Deadline &D, std::vector<DenseBitset> &Out,
                   std::vector<char> &Done);

  /// Runs the checker passes.  Requires frozen tables: a degraded epoch
  /// returns `FailedPrecondition` (lint needs the subtransitive graph's
  /// ports, which the cubic and partial rungs never build).
  Status lint(const std::vector<std::string> &Passes, const Deadline &D,
              unsigned Threads, LintResult &Out);

private:
  /// Translates a shadow-numbered label row into canonical numbering.
  DenseBitset translateRow(const DenseBitset &ShadowRow) const;

  uint64_t EpochId;
  std::unique_ptr<Module> M; ///< null for a delta epoch
  // Live path (cache miss): the ladder owns graph/frozen/engine.
  std::unique_ptr<HybridCFA> Hybrid;
  // Mapped path (cache hit): the snapshot owns the tables, Q queries it.
  std::unique_ptr<LoadedSnapshot> Snap;
  std::unique_ptr<QueryEngine> MappedEngine;
  // Delta path (edit): the view owns the detached frozen tables and the
  // canonical<->shadow id maps.
  DeltaView View;

  /// The engine serving point/batch queries, or null when degraded.
  QueryEngine *Q = nullptr;

  // Canonical shape, valid on every path.
  uint32_t CanonExprs = 0;
  uint32_t CanonLabels = 0;
  ExprId RootId = ExprId::invalid();

  std::mutex Mu; ///< serializes engine scratch across worker threads
};

/// The daemon's epoch registry: one current epoch, swapped atomically on
/// `load`; superseded epochs live until their last in-flight reference
/// drains.
class EpochManager {
public:
  /// The epoch new requests resolve against; null before the first load.
  std::shared_ptr<Epoch> current() const;

  /// A fresh monotonically increasing epoch id (first id is 1).
  uint64_t allocateId();

  /// Installs \p E as current; counts `serve.epoch_retirements` when it
  /// supersedes one.  The returned previous epoch (possibly null) keeps
  /// the caller in control of where the old mapping is released.
  std::shared_ptr<Epoch> install(std::shared_ptr<Epoch> E);

private:
  mutable std::mutex Mu;
  std::shared_ptr<Epoch> Cur;
  uint64_t NextId = 0;
};

} // namespace serve
} // namespace stcfa

#endif // STCFA_SERVE_EPOCH_H
