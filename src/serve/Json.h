//===-- serve/Json.h - Hardened JSON for the serve protocol -----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal JSON value, parser, and serializer for the daemon protocol
/// (docs/SERVE.md).  The parser is hardened for hostile stdin: bounded
/// nesting depth, strict syntax (no trailing garbage, no raw control
/// bytes inside strings — embedded NULs are rejected, not truncated),
/// and every failure is a `Status` (`InvalidArgument` for malformed
/// text, `OutOfMemory` for the injected `serve.request-parse` fault) —
/// never a crash or an exception.
///
/// This is deliberately *not* a general-purpose JSON library: it exists
/// so the one subsystem that consumes untrusted bytes does not lean on
/// the test-only parsers in the suite.  Numbers keep integer/double
/// distinction because the protocol traffics in ids and indices.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SERVE_JSON_H
#define STCFA_SERVE_JSON_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stcfa {
namespace serve {

/// A parsed JSON value.  Object member order is preserved (the protocol
/// never depends on it, but deterministic serialization helps tests).
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool B) {
    JsonValue V;
    V.K = Kind::Bool;
    V.BoolVal = B;
    return V;
  }
  static JsonValue number(int64_t I) {
    JsonValue V;
    V.K = Kind::Number;
    V.IsInt = true;
    V.IntVal = I;
    V.NumVal = static_cast<double>(I);
    return V;
  }
  static JsonValue number(double D) {
    JsonValue V;
    V.K = Kind::Number;
    V.NumVal = D;
    return V;
  }
  static JsonValue string(std::string S) {
    JsonValue V;
    V.K = Kind::String;
    V.Str = std::move(S);
    return V;
  }
  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolVal; }
  double asDouble() const { return NumVal; }
  /// True when the number was written as an integer and fits int64.
  bool isInt() const { return K == Kind::Number && IsInt; }
  int64_t asInt() const { return IntVal; }
  const std::string &asString() const { return Str; }

  const std::vector<JsonValue> &items() const { return Arr; }
  std::vector<JsonValue> &items() { return Arr; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  /// Object member lookup; null when absent or this is not an object.
  const JsonValue *field(std::string_view Name) const {
    for (const auto &[Key, Val] : Obj)
      if (Key == Name)
        return &Val;
    return nullptr;
  }

  void push(JsonValue V) { Arr.push_back(std::move(V)); }
  void set(std::string Name, JsonValue V) {
    Obj.emplace_back(std::move(Name), std::move(V));
  }

private:
  Kind K = Kind::Null;
  bool BoolVal = false;
  bool IsInt = false;
  int64_t IntVal = 0;
  double NumVal = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

/// Parse limits; the line reader already caps total bytes, so these bound
/// only the shapes a small input can still abuse (deep nesting).
struct JsonLimits {
  /// Maximum container nesting depth before the parser refuses.
  uint32_t MaxDepth = 64;
};

/// Parses exactly one JSON value spanning all of \p Text (trailing
/// whitespace allowed, trailing garbage is an error).  On failure \p Out
/// is unspecified and the status carries a byte offset in its message.
Status parseJson(std::string_view Text, JsonValue &Out,
                 const JsonLimits &Limits = {});

/// Serializes \p V on one line (no newline appended).  Strings are
/// escaped so the output never contains raw control bytes — replies stay
/// newline-delimited whatever the payload holds.
std::string renderJson(const JsonValue &V);
void renderJson(const JsonValue &V, std::string &Out);

} // namespace serve
} // namespace stcfa

#endif // STCFA_SERVE_JSON_H
