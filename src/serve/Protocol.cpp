//===-- serve/Protocol.cpp - Serve-mode request/reply protocol ------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

using namespace stcfa;
using namespace stcfa::serve;

Status stcfa::serve::validateRequest(JsonValue Doc, ServeRequest &Out) {
  Out.Doc = std::move(Doc);
  Out.Id = JsonValue::null();
  Out.Params = nullptr;
  if (!Out.Doc.isObject())
    return Status::invalidArgument("request must be a JSON object");
  // Salvage the id first so even a bad verb gets a correlated reply.
  if (const JsonValue *Id = Out.Doc.field("id")) {
    if (!Id->isNumber() && !Id->isString() && !Id->isNull())
      return Status::invalidArgument("'id' must be a number or string");
    Out.Id = *Id;
  }
  const JsonValue *V = Out.Doc.field("verb");
  if (!V || !V->isString())
    return Status::invalidArgument("request needs a string 'verb'");
  const std::string &Name = V->asString();
  if (Name == "load")
    Out.V = Verb::Load;
  else if (Name == "edit")
    Out.V = Verb::Edit;
  else if (Name == "query")
    Out.V = Verb::Query;
  else if (Name == "lint")
    Out.V = Verb::Lint;
  else if (Name == "metrics")
    Out.V = Verb::Metrics;
  else if (Name == "shutdown")
    Out.V = Verb::Shutdown;
  else
    return Status::invalidArgument("unknown verb '" + Name + "'");
  if (const JsonValue *P = Out.Doc.field("params")) {
    if (!P->isObject())
      return Status::invalidArgument("'params' must be an object");
    Out.Params = P;
  }
  return Status::ok();
}

std::string stcfa::serve::renderOkReply(const JsonValue &Id,
                                        const JsonValue &Result) {
  std::string Out = "{\"id\":";
  renderJson(Id, Out);
  Out += ",\"ok\":true,\"result\":";
  renderJson(Result, Out);
  Out += '}';
  return Out;
}

std::string stcfa::serve::renderRawOkReply(const JsonValue &Id,
                                           const std::string &Raw) {
  std::string Out = "{\"id\":";
  renderJson(Id, Out);
  Out += ",\"ok\":true,\"result\":";
  Out += Raw;
  Out += '}';
  return Out;
}

std::string stcfa::serve::renderErrorReply(const JsonValue &Id,
                                           const Status &S) {
  JsonValue Err = JsonValue::object();
  Err.set("code", JsonValue::string(statusCodeName(S.code())));
  Err.set("message", JsonValue::string(S.message()));
  std::string Out = "{\"id\":";
  renderJson(Id, Out);
  Out += ",\"ok\":false,\"error\":";
  renderJson(Err, Out);
  Out += '}';
  return Out;
}
