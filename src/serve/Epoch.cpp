//===-- serve/Epoch.cpp - Versioned analysis epochs for serve mode --------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Epoch.h"

#include "core/LabelSetKernel.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace stcfa;
using namespace stcfa::serve;

namespace {
/// Epochs are constructed on the reader thread but destroyed on whatever
/// thread drops the last reference, so the live count must be a real
/// atomic; the gauge mirrors its post-op value.
std::atomic<int64_t> LiveEpochs{0};

void recordEpochDelta(int64_t Delta) {
  static Gauge &G = gauge("serve.epochs_live");
  G.set(LiveEpochs.fetch_add(Delta, std::memory_order_relaxed) + Delta);
}
} // namespace

Epoch::Epoch(uint64_t Id, std::unique_ptr<Module> Mod,
             std::unique_ptr<HybridCFA> H)
    : EpochId(Id), M(std::move(Mod)), Hybrid(std::move(H)) {
  assert(Hybrid && Hybrid->engine() != HybridCFA::Engine::None &&
         "live epoch needs a served ladder");
  Q = Hybrid->queryEngine(); // null when the ladder degraded
  CanonExprs = M->numExprs();
  CanonLabels = M->numLabels();
  RootId = M->root();
  recordEpochDelta(+1);
}

Epoch::Epoch(uint64_t Id, std::unique_ptr<Module> Mod,
             std::unique_ptr<LoadedSnapshot> S, unsigned Threads,
             size_t KernelThreshold) // NOLINT(bugprone-easily-swappable-parameters)
    : EpochId(Id), M(std::move(Mod)), Snap(std::move(S)) {
  MappedEngine = std::make_unique<QueryEngine>(Snap->frozen(), Threads);
  MappedEngine->setKernelThreshold(KernelThreshold);
  if (auto Kern = Snap->adoptKernel())
    MappedEngine->adoptKernel(std::move(Kern));
  Q = MappedEngine.get();
  CanonExprs = M->numExprs();
  CanonLabels = M->numLabels();
  RootId = M->root();
  recordEpochDelta(+1);
}

Epoch::Epoch(uint64_t Id, DeltaView V, unsigned Threads,
             size_t KernelThreshold)
    : EpochId(Id), View(std::move(V)) {
  assert(View.Frozen && "delta epoch needs a frozen view");
  MappedEngine = std::make_unique<QueryEngine>(*View.Frozen, Threads);
  MappedEngine->setKernelThreshold(KernelThreshold);
  Q = MappedEngine.get();
  CanonExprs = View.NumExprs;
  CanonLabels = View.NumLabels;
  // Canonical numbering puts the outermost spine let — the program root —
  // last (it is the last expression a fresh parse creates).
  RootId = ExprId(View.NumExprs - 1);
  recordEpochDelta(+1);
}

Epoch::~Epoch() { recordEpochDelta(-1); }

const char *Epoch::engine() const {
  if (View.Frozen)
    return "delta";
  if (Snap)
    return "snapshot";
  return engineName(Hybrid->engine());
}

const FrozenGraph *Epoch::frozen() const {
  if (View.Frozen)
    return View.Frozen.get();
  if (Snap)
    return &Snap->frozen();
  return Hybrid->frozen();
}

uint64_t Epoch::cost() const {
  const FrozenGraph *F = frozen();
  uint64_t C = F ? F->numNodes() : CanonExprs;
  return C ? C : 1;
}

DenseBitset Epoch::translateRow(const DenseBitset &ShadowRow) const {
  DenseBitset Out(CanonLabels);
  ShadowRow.forEach([&](uint32_t ShadowL) {
    uint32_t C = View.LabelFromShadow[ShadowL];
    if (C != ~0u)
      Out.insert(C);
  });
  return Out;
}

Status Epoch::labelsOf(ExprId E, const Deadline &D, DenseBitset &Out) {
  if (D.expired())
    return Status::deadlineExceeded("query deadline expired before start");
  std::lock_guard<std::mutex> Lock(Mu);
  if (View.Frozen) {
    Out = translateRow(Q->labelsOf(ExprId(View.ExprToShadow[E.index()])));
    return Status::ok();
  }
  if (Q) {
    Out = Q->labelsOf(E);
    return Status::ok();
  }
  Out = Hybrid->labelSet(E); // table read / universal set on degraded rungs
  return Status::ok();
}

Status Epoch::isLabelIn(ExprId E, LabelId L, const Deadline &D, bool &Out) {
  if (D.expired())
    return Status::deadlineExceeded("query deadline expired before start");
  std::lock_guard<std::mutex> Lock(Mu);
  if (View.Frozen) {
    Out = Q->isLabelIn(ExprId(View.ExprToShadow[E.index()]),
                       LabelId(View.LabelToShadow[L.index()]));
    return Status::ok();
  }
  if (Q) {
    Out = Q->isLabelIn(E, L);
    return Status::ok();
  }
  Out = Hybrid->labelSet(E).contains(L.index());
  return Status::ok();
}

Status Epoch::occurrencesOf(LabelId L, const Deadline &D,
                            std::vector<ExprId> &Out) {
  if (D.expired())
    return Status::deadlineExceeded("query deadline expired before start");
  std::lock_guard<std::mutex> Lock(Mu);
  if (View.Frozen) {
    Out.clear();
    for (ExprId Shadow :
         Q->occurrencesOf(LabelId(View.LabelToShadow[L.index()]))) {
      uint32_t C = View.ExprFromShadow[Shadow.index()];
      if (C != ~0u)
        Out.push_back(ExprId(C));
    }
    std::sort(Out.begin(), Out.end(),
              [](ExprId A, ExprId B) { return A.index() < B.index(); });
    return Status::ok();
  }
  if (Q) {
    Out = Q->occurrencesOf(L);
    return Status::ok();
  }
  // Degraded sweep: one table read per occurrence, polled coarsely.
  Out.clear();
  for (uint32_t I = 0, E = CanonExprs; I != E; ++I) {
    if ((I & 1023u) == 0 && D.expired())
      return Status::deadlineExceeded("occurrence sweep exceeded deadline");
    if (Hybrid->labelSet(ExprId(I)).contains(L.index()))
      Out.push_back(ExprId(I));
  }
  return Status::ok();
}

Status Epoch::allLabels(const Deadline &D, std::vector<DenseBitset> &Out,
                        std::vector<char> &Done) {
  const uint32_t E = CanonExprs;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Q) {
    std::vector<ExprId> Es;
    Es.reserve(E);
    // A delta epoch batches over shadow ids in canonical order, so the
    // result and `Done` slots line up with canonical ids as-is.
    for (uint32_t I = 0; I != E; ++I)
      Es.push_back(View.Frozen ? ExprId(View.ExprToShadow[I]) : ExprId(I));
    Status BS = Status::ok();
    if (D.isInfinite()) {
      Out = Q->labelsOfBatch(Es);
      Done.assign(E, 1);
    } else {
      BatchControl BC;
      BC.D = D;
      BatchOutcome Outcome;
      Out = Q->labelsOfBatch(Es, BC, Outcome);
      Done = std::move(Outcome.Done);
      BS = Outcome.S;
    }
    if (View.Frozen)
      for (DenseBitset &Row : Out)
        Row = translateRow(Row);
    return BS;
  }
  Out.clear();
  Out.reserve(E);
  Done.assign(E, 0);
  for (uint32_t I = 0; I != E; ++I) {
    if ((I & 255u) == 0 && D.expired()) {
      Out.resize(E);
      return Status::deadlineExceeded("all-labels sweep exceeded deadline");
    }
    Out.push_back(Hybrid->labelSet(ExprId(I)));
    Done[I] = 1;
  }
  return Status::ok();
}

Status Epoch::lint(const std::vector<std::string> &Passes, const Deadline &D,
                   unsigned Threads, LintResult &Out) {
  if (View.Frozen)
    return Status::failedPrecondition(
        "lint is unavailable on a delta epoch (it has no module); run a "
        "full load first");
  const FrozenGraph *F = frozen();
  if (!F || !F->status().isOk())
    return Status::failedPrecondition(
        "lint requires the subtransitive engine; this epoch degraded to " +
        std::string(engine()));
  LintOptions LO;
  LO.Passes = Passes;
  LO.D = D;
  LO.Threads = Threads;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Snap) {
    LintEngine Lint(*M, *F);
    Out = Lint.run(LO);
  } else {
    LintEngine Lint(*Hybrid->graph(), *F);
    Out = Lint.run(LO);
  }
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// EpochManager
//===----------------------------------------------------------------------===//

std::shared_ptr<Epoch> EpochManager::current() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Cur;
}

uint64_t EpochManager::allocateId() {
  std::lock_guard<std::mutex> Lock(Mu);
  return ++NextId;
}

std::shared_ptr<Epoch> EpochManager::install(std::shared_ptr<Epoch> E) {
  static Counter &Retirements = counter("serve.epoch_retirements");
  std::shared_ptr<Epoch> Old;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Old = std::move(Cur);
    Cur = std::move(E);
  }
  if (Old)
    Retirements.inc();
  return Old;
}
