//===-- serve/Server.cpp - The stcfa analysis daemon ----------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "core/LabelSetKernel.h"
#include "parser/Parser.h"
#include "sema/Infer.h"
#include "support/Diagnostics.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/Timer.h"

#include <cerrno>
#include <cstdio>
#include <unistd.h>

using namespace stcfa;
using namespace stcfa::serve;

namespace {

/// The daemon's snapshot-cache configuration string.  Loads always run
/// the hybrid ladder, so daemon keys never collide with batch-mode keys
/// (which only cache the subtransitive/poly analyses).
constexpr const char *ServeCacheConfig =
    "analysis=hybrid;congruence=bytype;policy=paper";

void writeAll(int Fd, const char *Data, size_t Len) {
  while (Len != 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return; // a dead pipe: nothing sensible left to do with the reply
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
}

JsonValue labelArray(const DenseBitset &Set) {
  JsonValue Arr = JsonValue::array();
  Set.forEach([&](uint32_t L) { Arr.push(JsonValue::number(int64_t(L))); });
  return Arr;
}

JsonValue universalLabelArray(uint32_t NumLabels) {
  JsonValue Arr = JsonValue::array();
  for (uint32_t L = 0; L != NumLabels; ++L)
    Arr.push(JsonValue::number(int64_t(L)));
  return Arr;
}

/// Reads an optional non-negative integer field with an upper bound.
Status readIndex(const JsonValue *Params, const char *Name, uint32_t Limit,
                 bool &Present, uint32_t &Out) {
  Present = false;
  const JsonValue *V = Params ? Params->field(Name) : nullptr;
  if (!V)
    return Status::ok();
  if (!V->isInt() || V->asInt() < 0)
    return Status::invalidArgument(std::string("'") + Name +
                                   "' must be a non-negative integer");
  if (static_cast<uint64_t>(V->asInt()) >= Limit)
    return Status::invalidArgument(std::string("'") + Name + "' " +
                                   std::to_string(V->asInt()) +
                                   " out of range (limit " +
                                   std::to_string(Limit) + ")");
  Present = true;
  Out = static_cast<uint32_t>(V->asInt());
  return Status::ok();
}

} // namespace

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

Admission::Decision Admission::admit(uint64_t Cost) {
  static Gauge &InflightGauge = gauge("serve.inflight_cost");
  const uint64_t Hard = Soft > UINT64_MAX / 2 ? UINT64_MAX : 2 * Soft;
  uint64_t After = Inflight.fetch_add(Cost, std::memory_order_relaxed) + Cost;
  if (After > Hard) {
    Inflight.fetch_sub(Cost, std::memory_order_relaxed);
    return Decision::Shed;
  }
  InflightGauge.set(static_cast<int64_t>(After));
  return After <= Soft ? Decision::Full : Decision::Degraded;
}

void Admission::release(uint64_t Cost) {
  static Gauge &InflightGauge = gauge("serve.inflight_cost");
  uint64_t After = Inflight.fetch_sub(Cost, std::memory_order_relaxed) - Cost;
  InflightGauge.set(static_cast<int64_t>(After));
}

//===----------------------------------------------------------------------===//
// Server lifecycle
//===----------------------------------------------------------------------===//

Server::Server(int InFd, int OutFd, ServeOptions O)
    : InFd(InFd), OutFd(OutFd), Opts(std::move(O)),
      Gate(Opts.MaxInflightCost) {
  unsigned N = Opts.Threads ? Opts.Threads : 1;
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back([this] {
      for (;;) {
        std::function<void()> Job;
        {
          std::unique_lock<std::mutex> Lock(QueueMu);
          QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
          if (Queue.empty())
            return; // Stopping and drained
          Job = std::move(Queue.front());
          Queue.pop_front();
          ++Busy;
        }
        Job();
        {
          std::lock_guard<std::mutex> Lock(QueueMu);
          --Busy;
        }
        IdleCv.notify_all();
      }
    });
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void Server::enqueue(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Queue.push_back(std::move(Job));
  }
  QueueCv.notify_one();
}

void Server::drainWorkers() {
  std::unique_lock<std::mutex> Lock(QueueMu);
  IdleCv.wait(Lock, [this] { return Queue.empty() && Busy == 0; });
}

//===----------------------------------------------------------------------===//
// Accept path
//===----------------------------------------------------------------------===//

bool Server::readLine(std::string &Line, Status &LineStatus) {
  LineStatus = Status::ok();
  Line.clear();
  // The accept-allocation fault: the same outcome as the line buffer's
  // growth failing — the request's bytes are drained, not stored, and a
  // structured out-of-memory reply goes out.  Polled once per line, at
  // the first point bytes for it exist (where the growth would happen):
  // polling at function entry instead would race a tester arming the
  // site between this thread blocking for a request and receiving it.
  bool Polled = false, Faulted = false, Oversized = false;
  for (;;) {
    size_t Nl = Pending.find('\n');
    size_t Take = Nl == std::string::npos ? Pending.size() : Nl;
    if (!Polled && (Take != 0 || Nl != std::string::npos)) {
      Polled = true;
      Faulted = faultFires(fault::ServeAcceptAlloc);
    }
    if (!Faulted && !Oversized) {
      if (Line.size() + Take > Opts.MaxRequestBytes)
        Oversized = true;
      else
        Line.append(Pending.data(), Take);
    }
    Pending.erase(0, Nl == std::string::npos ? Pending.size() : Nl + 1);
    if (Nl != std::string::npos || (SawEof && (!Line.empty() || Oversized))) {
      if (Faulted) {
        Line.clear();
        LineStatus =
            Status::outOfMemory("accept: line buffer allocation failed");
      } else if (Oversized) {
        Line.clear();
        LineStatus = Status::invalidArgument(
            "request exceeds the " + std::to_string(Opts.MaxRequestBytes) +
            "-byte line cap");
      }
      return true;
    }
    if (SawEof)
      return false;
    char Buf[65536];
    ssize_t N = ::read(InFd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      SawEof = true;
      continue;
    }
    if (N == 0) {
      SawEof = true;
      continue;
    }
    Pending.append(Buf, static_cast<size_t>(N));
  }
}

int Server::run() {
  std::string Line;
  Status LineStatus = Status::ok();
  while (!ShutdownRequested && readLine(Line, LineStatus)) {
    if (!LineStatus.isOk()) {
      replyError(JsonValue::null(), LineStatus);
      continue;
    }
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue; // blank keep-alive line
    handleLine(Line);
  }
  // EOF or shutdown: finish whatever was admitted, then leave.  The
  // destructor joins the (now idle) workers.
  drainWorkers();
  return 0;
}

void Server::handleLine(const std::string &Line) {
  static Counter &Requests = counter("serve.requests");
  Requests.inc();
  JsonValue Doc;
  if (Status S = parseJson(Line, Doc); !S.isOk()) {
    replyError(JsonValue::null(), S);
    return;
  }
  ServeRequest Req;
  if (Status S = validateRequest(std::move(Doc), Req); !S.isOk()) {
    replyError(Req.Id, S);
    return;
  }
  dispatch(std::move(Req));
}

void Server::dispatch(ServeRequest Req) {
  static Counter &Sheds = counter("serve.sheds");
  static Counter &Degraded = counter("serve.degraded");
  switch (Req.V) {
  case Verb::Load:
    handleLoad(Req);
    return;
  case Verb::Edit:
    handleEdit(Req);
    return;
  case Verb::Metrics:
    handleMetrics(Req);
    return;
  case Verb::Shutdown:
    drainWorkers();
    {
      JsonValue Result = JsonValue::object();
      Result.set("shutdown", JsonValue::boolean(true));
      reply(renderOkReply(Req.Id, Result));
    }
    ShutdownRequested = true;
    return;
  case Verb::Query:
  case Verb::Lint:
    break;
  }

  // Epoch resolution happens HERE, on the accept thread: a later `load`
  // must not change this request's answers.
  std::shared_ptr<Epoch> E = Epochs.current();
  if (!E) {
    replyError(Req.Id,
               Status::failedPrecondition("no epoch loaded; send a "
                                          "'load' request first"));
    return;
  }
  const uint64_t Cost = E->cost();
  Admission::Decision Decision = Gate.admit(Cost);
  if (Decision == Admission::Decision::Shed) {
    Sheds.inc();
    replyError(Req.Id,
               Status::resourceExhausted(
                   "admission budget exhausted (" +
                   std::to_string(Gate.inflight()) + " node-units in "
                   "flight); retry when in-flight work drains"));
    return;
  }
  const bool IsDegraded = Decision == Admission::Decision::Degraded;
  if (IsDegraded) {
    Degraded.inc();
    if (Req.V == Verb::Lint) {
      // Lint has no partial-answer rung: its findings would be garbage
      // under universal sets, so over the soft budget it sheds.
      Gate.release(Cost);
      Sheds.inc();
      replyError(Req.Id, Status::resourceExhausted(
                             "admission budget exceeded and lint cannot "
                             "serve a degraded answer; retry later"));
      return;
    }
  }
  bool IsQuery = Req.V == Verb::Query;
  enqueue([this, Req = std::move(Req), E = std::move(E), Cost, IsDegraded,
           IsQuery]() mutable {
    if (IsQuery)
      handleQuery(Req, E, IsDegraded);
    else
      handleLint(Req, E);
    E.reset(); // drop the epoch ref before releasing admission units
    Gate.release(Cost);
  });
}

//===----------------------------------------------------------------------===//
// Verbs
//===----------------------------------------------------------------------===//

Deadline Server::requestDeadline(const ServeRequest &Req) const {
  if (Req.Params)
    if (const JsonValue *Ms = Req.Params->field("deadline_ms"))
      if (Ms->isInt() && Ms->asInt() >= 0)
        return Deadline::afterMillis(Ms->asInt());
  if (Opts.DefaultDeadlineMs >= 0)
    return Deadline::afterMillis(Opts.DefaultDeadlineMs);
  return Deadline::infinite();
}

void Server::handleLoad(const ServeRequest &Req) {
  static Counter &Loads = counter("serve.loads");
  static Histogram &Millis =
      histogram("serve.request_millis", latencyBucketsMillis());
  Loads.inc();
  Timer T;

  const JsonValue *Src = Req.Params ? Req.Params->field("source") : nullptr;
  if (!Src || !Src->isString()) {
    replyError(Req.Id, Status::invalidArgument(
                           "'load' needs params.source (program text)"));
    return;
  }
  const std::string &Source = Src->asString();
  Deadline D = requestDeadline(Req);

  const size_t KernelThreshold =
      Opts.KernelThreshold >= 0
          ? static_cast<size_t>(Opts.KernelThreshold)
          : QueryEngine::DefaultKernelThreshold;

  // The parsed module is needed on every path: queries resolve the root
  // occurrence through it and lint walks it even over a mapped snapshot.
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  if (!M) {
    std::string Rendered = Diags.render();
    while (!Rendered.empty() && Rendered.back() == '\n')
      Rendered.pop_back();
    replyError(Req.Id, Status::invalidArgument("parse failed: " + Rendered));
    return;
  }
  DiagnosticEngine InferDiags;
  (void)inferTypes(*M, InferDiags); // untyped programs still analyze

  uint64_t CacheKey = 0;
  std::string CachePath;
  const char *CacheOutcome = "off";
  if (Opts.SnapshotCache) {
    CacheKey = snapshotCacheKey(Source, ServeCacheConfig);
    CachePath =
        snapshotCachePath(snapshotCacheDir(Opts.SnapshotDir), CacheKey);
    Status CacheStatus = Status::ok();
    if (std::unique_ptr<LoadedSnapshot> Snap =
            LoadedSnapshot::load(CachePath, CacheStatus)) {
      if (Snap->contentHash() == CacheKey &&
          Snap->frozen().numExprs() == M->numExprs()) {
        counter("snapshot.cache-hits").inc();
        touchSnapshotEntry(CachePath); // a hit refreshes the LRU order
        auto E = std::make_shared<Epoch>(Epochs.allocateId(), std::move(M),
                                         std::move(Snap), Opts.Threads,
                                         KernelThreshold);
        Epochs.install(E);
        LoadedSource = Source;
        Session.reset();
        JsonValue Result = JsonValue::object();
        Result.set("epoch", JsonValue::number(int64_t(E->id())));
        Result.set("engine", JsonValue::string(E->engine()));
        Result.set("cache", JsonValue::string("hit"));
        Result.set("exprs", JsonValue::number(int64_t(E->numExprs())));
        Result.set("labels", JsonValue::number(int64_t(E->numLabels())));
        Result.set("nodes",
                   JsonValue::number(int64_t(E->frozen()->numNodes())));
        reply(renderOkReply(Req.Id, Result));
        Millis.observe(static_cast<uint64_t>(T.millis()));
        return;
      }
      Snap.reset(); // key collision: rebuild rather than serve wrong answers
    }
    counter("snapshot.cache-misses").inc();
    CacheOutcome = "miss";
  }

  HybridOptions HO;
  HO.Threads = Opts.Threads;
  HO.D = D;
  HO.Degrade = Opts.Degrade == "off"       ? DegradeMode::Off
               : Opts.Degrade == "partial" ? DegradeMode::Partial
                                           : DegradeMode::Standard;
  HO.KernelThreshold = KernelThreshold;
  auto Hybrid = std::make_unique<HybridCFA>(*M, HO);
  if (Status S = Hybrid->solve(); !S.isOk()) {
    replyError(Req.Id, S);
    return;
  }

  // Write-through: persist the freshly frozen tables under the cache key
  // so the *next* daemon process warms up with one mmap.  A failed fill
  // never fails the load.
  if (Opts.SnapshotCache && Hybrid->frozen() &&
      Hybrid->frozen()->status().isOk()) {
    Status WS = ensureSnapshotDir(snapshotCacheDir(Opts.SnapshotDir));
    if (WS.isOk()) {
      SnapshotWriteOptions WO;
      WO.ContentHash = CacheKey;
      std::unique_ptr<LabelSetKernel> Kern;
      if (M->numLabels() != 0) {
        Kern = std::make_unique<LabelSetKernel>(*Hybrid->frozen(),
                                                Opts.Threads);
        if (Kern->run().isOk())
          WO.Kernel = Kern.get();
        else
          Kern.reset();
      }
      WS = writeSnapshot(CachePath, *Hybrid->frozen(), *M, WO);
    }
    if (!WS.isOk())
      std::fprintf(stderr, "warning: snapshot cache fill failed: %s\n",
                   WS.toString().c_str());
    else if (Opts.SnapshotCacheMaxBytes != 0)
      enforceSnapshotCacheBudget(snapshotCacheDir(Opts.SnapshotDir),
                                 Opts.SnapshotCacheMaxBytes);
  }

  auto E = std::make_shared<Epoch>(Epochs.allocateId(), std::move(M),
                                   std::move(Hybrid));
  Epochs.install(E);
  LoadedSource = Source;
  Session.reset();
  JsonValue Result = JsonValue::object();
  Result.set("epoch", JsonValue::number(int64_t(E->id())));
  Result.set("engine", JsonValue::string(E->engine()));
  Result.set("cache", JsonValue::string(CacheOutcome));
  Result.set("exprs", JsonValue::number(int64_t(E->numExprs())));
  Result.set("labels", JsonValue::number(int64_t(E->numLabels())));
  Result.set("nodes",
             JsonValue::number(
                 int64_t(E->frozen() ? E->frozen()->numNodes() : 0)));
  reply(renderOkReply(Req.Id, Result));
  Millis.observe(static_cast<uint64_t>(T.millis()));
}

Status Server::installFullEpoch(const std::string &Source, const Deadline &D,
                                std::shared_ptr<Epoch> &Out) {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  if (!M) {
    std::string Rendered = Diags.render();
    while (!Rendered.empty() && Rendered.back() == '\n')
      Rendered.pop_back();
    return Status::invalidArgument("parse failed: " + Rendered);
  }
  DiagnosticEngine InferDiags;
  (void)inferTypes(*M, InferDiags); // untyped programs still analyze

  HybridOptions HO;
  HO.Threads = Opts.Threads;
  HO.D = D;
  HO.Degrade = Opts.Degrade == "off"       ? DegradeMode::Off
               : Opts.Degrade == "partial" ? DegradeMode::Partial
                                           : DegradeMode::Standard;
  HO.KernelThreshold = Opts.KernelThreshold >= 0
                           ? static_cast<size_t>(Opts.KernelThreshold)
                           : QueryEngine::DefaultKernelThreshold;
  auto Hybrid = std::make_unique<HybridCFA>(*M, HO);
  if (Status S = Hybrid->solve(); !S.isOk())
    return S;
  Out = std::make_shared<Epoch>(Epochs.allocateId(), std::move(M),
                                std::move(Hybrid));
  Epochs.install(Out);
  return Status::ok();
}

void Server::handleEdit(const ServeRequest &Req) {
  static Counter &Edits = counter("serve.edits");
  static Histogram &Millis =
      histogram("serve.request_millis", latencyBucketsMillis());
  Edits.inc();
  Timer T;

  // -- parse the edit request ---------------------------------------------
  const JsonValue *OpV = Req.Params ? Req.Params->field("op") : nullptr;
  if (!OpV || !OpV->isString()) {
    replyError(Req.Id, Status::invalidArgument(
                           "'edit' needs params.op "
                           "(insert|delete|replace|replace-body|rename)"));
    return;
  }
  EditRequest R;
  const std::string &Op = OpV->asString();
  if (Op == "insert")
    R.Kind = EditRequest::Op::Insert;
  else if (Op == "delete")
    R.Kind = EditRequest::Op::Delete;
  else if (Op == "replace")
    R.Kind = EditRequest::Op::Replace;
  else if (Op == "replace-body")
    R.Kind = EditRequest::Op::ReplaceBody;
  else if (Op == "rename")
    R.Kind = EditRequest::Op::Rename;
  else {
    replyError(Req.Id, Status::invalidArgument(
                           "unknown edit op '" + Op +
                           "' (insert|delete|replace|replace-body|rename)"));
    return;
  }
  auto readString = [&](const char *Name, std::string &Out,
                        bool Required) -> Status {
    const JsonValue *V = Req.Params->field(Name);
    if (!V) {
      if (Required)
        return Status::invalidArgument(std::string("edit op '") + Op +
                                       "' needs params." + Name);
      return Status::ok();
    }
    if (!V->isString())
      return Status::invalidArgument(std::string("'") + Name +
                                     "' must be a string");
    Out = V->asString();
    return Status::ok();
  };
  const bool NeedsText = R.Kind == EditRequest::Op::Insert ||
                         R.Kind == EditRequest::Op::Replace ||
                         R.Kind == EditRequest::Op::ReplaceBody;
  if (Status S = readString("text", R.Text, NeedsText); !S.isOk()) {
    replyError(Req.Id, S);
    return;
  }
  if (Status S = readString("name", R.Name, false); !S.isOk()) {
    replyError(Req.Id, S);
    return;
  }
  if (Status S = readString("before", R.Before, false); !S.isOk()) {
    replyError(Req.Id, S);
    return;
  }
  if (Status S = readString("new_name", R.NewName,
                            R.Kind == EditRequest::Op::Rename);
      !S.isOk()) {
    replyError(Req.Id, S);
    return;
  }
  if (const JsonValue *L = Req.Params->field("line")) {
    if (!L->isInt() || L->asInt() <= 0) {
      replyError(Req.Id,
                 Status::invalidArgument("'line' must be a positive line "
                                         "number"));
      return;
    }
    R.Line = static_cast<uint32_t>(L->asInt());
  }

  // -- resolve the session -------------------------------------------------
  std::shared_ptr<Epoch> Bound = Epochs.current();
  if (!Bound || LoadedSource.empty()) {
    replyError(Req.Id, Status::failedPrecondition(
                           "no program loaded; send a 'load' request "
                           "before editing"));
    return;
  }
  const uint64_t BoundEpoch = Bound->id();
  if (!Session) {
    DeltaSession::Options DO;
    DO.Threads = Opts.Threads;
    Status CS = Status::ok();
    Session = DeltaSession::create(LoadedSource, DO, CS);
    if (!Session) {
      replyError(Req.Id, CS);
      return;
    }
  }

  // -- apply ---------------------------------------------------------------
  ApplyResult Res;
  if (Status S = Session->apply(R, Res); !S.isOk()) {
    // A rejected edit never changed the session; the current epoch keeps
    // serving untouched.
    replyError(Req.Id, S);
    return;
  }

  const char *Mode = "delta";
  std::shared_ptr<Epoch> E;
  Deadline D = requestDeadline(Req);
  bool InstallRaced = false;
  if (!Res.NeedsFullPipeline) {
    // Generation check: if another install slipped in between accept and
    // here (or the injected race fires), the delta was computed against
    // a superseded program — discard it and reload the session's source
    // in full rather than publish a mismatched epoch.
    InstallRaced = faultFires(fault::DeltaInstallRace) ||
                   (Epochs.current() && Epochs.current()->id() != BoundEpoch);
  }
  if (Res.NeedsFullPipeline || InstallRaced) {
    if (InstallRaced)
      counter("delta.fallback_full").inc();
    Mode = InstallRaced ? "install-race" : "full-pipeline";
    if (Status S = installFullEpoch(Session->currentSource(), D, E);
        !S.isOk()) {
      replyError(Req.Id, S);
      return;
    }
  } else {
    DeltaView View;
    if (Status S = Session->freezeView(View); !S.isOk()) {
      replyError(Req.Id, S);
      return;
    }
    const size_t KernelThreshold =
        Opts.KernelThreshold >= 0
            ? static_cast<size_t>(Opts.KernelThreshold)
            : QueryEngine::DefaultKernelThreshold;
    E = std::make_shared<Epoch>(Epochs.allocateId(), std::move(View),
                                Opts.Threads, KernelThreshold);
    Epochs.install(E);
    Mode = Res.M == ApplyResult::Mode::Metadata      ? "metadata"
           : Res.M == ApplyResult::Mode::FullRebuild ? "full-rebuild"
                                                     : "delta";
  }

  JsonValue Result = JsonValue::object();
  Result.set("epoch", JsonValue::number(int64_t(E->id())));
  Result.set("engine", JsonValue::string(E->engine()));
  Result.set("mode", JsonValue::string(Mode));
  Result.set("dirty_nodes", JsonValue::number(int64_t(Res.DirtyNodes)));
  Result.set("reclose_edges", JsonValue::number(int64_t(Res.RecloseEdges)));
  Result.set("exprs", JsonValue::number(int64_t(E->numExprs())));
  Result.set("labels", JsonValue::number(int64_t(E->numLabels())));
  reply(renderOkReply(Req.Id, Result));
  Millis.observe(static_cast<uint64_t>(T.millis()));
}

void Server::handleMetrics(const ServeRequest &Req) {
  // The exporter pretty-prints; the protocol is one line per reply, so
  // round-trip through the serve parser to compact it.
  JsonValue V;
  if (Status S = parseJson(snapshotMetrics().toJson(), V); !S.isOk()) {
    replyError(Req.Id,
               Status::internal("metrics rendering failed: " + S.message()));
    return;
  }
  reply(renderOkReply(Req.Id, V));
}

void Server::handleQuery(const ServeRequest &Req,
                         const std::shared_ptr<Epoch> &E, bool Degraded) {
  static Counter &Queries = counter("serve.queries");
  static Histogram &Millis =
      histogram("serve.request_millis", latencyBucketsMillis());
  Queries.inc();
  Timer T;

  std::string Kind = "labels";
  if (Req.Params)
    if (const JsonValue *K = Req.Params->field("kind")) {
      if (!K->isString()) {
        replyError(Req.Id,
                   Status::invalidArgument("'kind' must be a string"));
        return;
      }
      Kind = K->asString();
    }
  bool HasExpr = false, HasLabel = false;
  uint32_t ExprIdx = 0, LabelIdx = 0;
  if (Status S = readIndex(Req.Params, "expr", E->numExprs(), HasExpr,
                           ExprIdx);
      !S.isOk()) {
    replyError(Req.Id, S);
    return;
  }
  if (Status S = readIndex(Req.Params, "label", E->numLabels(), HasLabel,
                           LabelIdx);
      !S.isOk()) {
    replyError(Req.Id, S);
    return;
  }
  ExprId Target = HasExpr ? ExprId(ExprIdx) : E->root();
  Deadline D = requestDeadline(Req);

  JsonValue Result = JsonValue::object();
  Result.set("epoch", JsonValue::number(int64_t(E->id())));
  Result.set("engine",
             JsonValue::string(Degraded ? "partial" : E->engine()));
  if (Degraded)
    Result.set("degraded", JsonValue::boolean(true));

  if (Kind == "labels") {
    if (Degraded) {
      Result.set("labels", universalLabelArray(E->numLabels()));
    } else {
      DenseBitset Set;
      if (Status S = E->labelsOf(Target, D, Set); !S.isOk()) {
        replyError(Req.Id, S);
        return;
      }
      Result.set("labels", labelArray(Set));
    }
  } else if (Kind == "is-label-in") {
    if (!HasLabel) {
      replyError(Req.Id, Status::invalidArgument(
                             "'is-label-in' needs params.label"));
      return;
    }
    bool Value = true; // the universal superset answers yes
    if (!Degraded) {
      if (Status S = E->isLabelIn(Target, LabelId(LabelIdx), D, Value);
          !S.isOk()) {
        replyError(Req.Id, S);
        return;
      }
    }
    Result.set("value", JsonValue::boolean(Value));
  } else if (Kind == "occurrences") {
    if (!HasLabel) {
      replyError(Req.Id, Status::invalidArgument(
                             "'occurrences' needs params.label"));
      return;
    }
    JsonValue Arr = JsonValue::array();
    if (Degraded) {
      for (uint32_t I = 0, N = E->numExprs(); I != N; ++I)
        Arr.push(JsonValue::number(int64_t(I)));
    } else {
      std::vector<ExprId> Occ;
      if (Status S = E->occurrencesOf(LabelId(LabelIdx), D, Occ);
          !S.isOk()) {
        replyError(Req.Id, S);
        return;
      }
      for (ExprId Id : Occ)
        Arr.push(JsonValue::number(int64_t(Id.index())));
    }
    Result.set("exprs", std::move(Arr));
  } else if (Kind == "all-labels") {
    if (Degraded) {
      // Bounded degraded answer: one universal set stands for every
      // occurrence instead of materializing exprs x labels ids.
      Result.set("universal", JsonValue::boolean(true));
      Result.set("labels", universalLabelArray(E->numLabels()));
    } else {
      std::vector<DenseBitset> Sets;
      std::vector<char> Done;
      Status S = E->allLabels(D, Sets, Done);
      if (!S.isOk()) {
        replyError(Req.Id, S);
        return;
      }
      JsonValue Arr = JsonValue::array();
      for (uint32_t I = 0, N = E->numExprs(); I != N; ++I) {
        if (!Done[I] || Sets[I].empty())
          continue;
        JsonValue Row = JsonValue::object();
        Row.set("expr", JsonValue::number(int64_t(I)));
        Row.set("labels", labelArray(Sets[I]));
        Arr.push(std::move(Row));
      }
      Result.set("sets", std::move(Arr));
    }
  } else {
    replyError(Req.Id,
               Status::invalidArgument(
                   "unknown query kind '" + Kind +
                   "' (labels|all-labels|is-label-in|occurrences)"));
    return;
  }
  reply(renderOkReply(Req.Id, Result));
  Millis.observe(static_cast<uint64_t>(T.millis()));
}

void Server::handleLint(const ServeRequest &Req,
                        const std::shared_ptr<Epoch> &E) {
  static Counter &Lints = counter("serve.lints");
  static Histogram &Millis =
      histogram("serve.request_millis", latencyBucketsMillis());
  Lints.inc();
  Timer T;

  std::vector<std::string> Passes;
  if (Req.Params)
    if (const JsonValue *P = Req.Params->field("passes")) {
      if (!P->isArray()) {
        replyError(Req.Id, Status::invalidArgument(
                               "'passes' must be an array of pass ids"));
        return;
      }
      for (const JsonValue &Id : P->items()) {
        if (!Id.isString() || !LintEngine::findPass(Id.asString())) {
          replyError(Req.Id,
                     Status::invalidArgument(
                         "unknown lint pass" +
                         (Id.isString() ? " '" + Id.asString() + "'"
                                        : std::string(" (non-string id)"))));
          return;
        }
        Passes.push_back(Id.asString());
      }
    }

  LintResult LR;
  if (Status S = E->lint(Passes, requestDeadline(Req), Opts.Threads, LR);
      !S.isOk()) {
    replyError(Req.Id, S);
    return;
  }

  JsonValue Findings = JsonValue::array();
  for (const LintPassReport &R : LR.Reports)
    for (const LintDiagnostic &Diag : R.Findings) {
      JsonValue F = JsonValue::object();
      F.set("pass", JsonValue::string(Diag.RuleId));
      F.set("severity",
            JsonValue::string(lintSeverityName(Diag.Severity)));
      F.set("message", JsonValue::string(Diag.Message));
      F.set("line", JsonValue::number(int64_t(Diag.Range.Begin.Line)));
      F.set("col", JsonValue::number(int64_t(Diag.Range.Begin.Col)));
      Findings.push(std::move(F));
    }
  JsonValue Result = JsonValue::object();
  Result.set("epoch", JsonValue::number(int64_t(E->id())));
  Result.set("engine", JsonValue::string(E->engine()));
  Result.set("findings", std::move(Findings));
  Result.set("errors", JsonValue::number(int64_t(LR.NumErrors)));
  Result.set("warnings", JsonValue::number(int64_t(LR.NumWarnings)));
  Result.set("notes", JsonValue::number(int64_t(LR.NumNotes)));
  Result.set("partial", JsonValue::boolean(LR.anyPartial()));
  reply(renderOkReply(Req.Id, Result));
  Millis.observe(static_cast<uint64_t>(T.millis()));
}

//===----------------------------------------------------------------------===//
// Reply path
//===----------------------------------------------------------------------===//

void Server::reply(const std::string &Line) {
  static Counter &Replies = counter("serve.replies");
  Replies.inc();
  // The reply-write fault: serialization failed after the work was done.
  // The fallback is a preformatted static line — no allocation on the
  // failure path — so the client still gets a parseable reply and the
  // stream stays line-synchronized.
  if (faultFires(fault::ServeReplyWrite)) {
    static const char Fallback[] =
        "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"internal\","
        "\"message\":\"reply serialization failed\"}}\n";
    std::lock_guard<std::mutex> Lock(WriteMu);
    writeAll(OutFd, Fallback, sizeof(Fallback) - 1);
    return;
  }
  std::string Out = Line;
  Out += '\n';
  std::lock_guard<std::mutex> Lock(WriteMu);
  writeAll(OutFd, Out.data(), Out.size());
}

void Server::replyError(const JsonValue &Id, const Status &S) {
  static Counter &Errors = counter("serve.errors");
  Errors.inc();
  reply(renderErrorReply(Id, S));
}
