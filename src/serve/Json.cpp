//===-- serve/Json.cpp - Hardened JSON for the serve protocol -------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include "support/FaultInjection.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace stcfa;
using namespace stcfa::serve;

namespace {

/// Recursive-descent parser over a bounded buffer.  Every entry point
/// checks the depth and the injected allocation fault before it grows a
/// container, so hostile input degrades into a `Status`, never a crash.
class Parser {
public:
  Parser(std::string_view Text, const JsonLimits &Limits)
      : Text(Text), Limits(Limits) {}

  Status run(JsonValue &Out) {
    skipWs();
    Status S = parseValue(Out, 0);
    if (!S.isOk())
      return S;
    skipWs();
    if (Pos != Text.size())
      return err("trailing bytes after JSON value");
    return Status::ok();
  }

private:
  Status err(const char *Why) const {
    return Status::invalidArgument(std::string(Why) + " at byte " +
                                   std::to_string(Pos));
  }

  bool done() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWs() {
    while (!done()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    if (done() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool consumeWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) != W)
      return false;
    Pos += W.size();
    return true;
  }

  Status parseValue(JsonValue &Out, uint32_t Depth) {
    if (Depth > Limits.MaxDepth)
      return err("nesting exceeds the depth limit");
    if (done())
      return err("unexpected end of input");
    switch (peek()) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (Status St = parseString(S); !St.isOk())
        return St;
      Out = JsonValue::string(std::move(S));
      return Status::ok();
    }
    case 't':
      if (consumeWord("true")) {
        Out = JsonValue::boolean(true);
        return Status::ok();
      }
      return err("invalid literal");
    case 'f':
      if (consumeWord("false")) {
        Out = JsonValue::boolean(false);
        return Status::ok();
      }
      return err("invalid literal");
    case 'n':
      if (consumeWord("null")) {
        Out = JsonValue::null();
        return Status::ok();
      }
      return err("invalid literal");
    default:
      return parseNumber(Out);
    }
  }

  Status parseObject(JsonValue &Out, uint32_t Depth) {
    // Mid-parse allocation failure: the same unwind an organic OOM while
    // growing the member vector would take.
    if (faultFires(fault::ServeRequestParse))
      return Status::outOfMemory("request parse: allocation failed");
    ++Pos; // '{'
    Out = JsonValue::object();
    skipWs();
    if (consume('}'))
      return Status::ok();
    for (;;) {
      skipWs();
      if (done() || peek() != '"')
        return err("expected object key string");
      std::string Key;
      if (Status S = parseString(Key); !S.isOk())
        return S;
      skipWs();
      if (!consume(':'))
        return err("expected ':' after object key");
      skipWs();
      JsonValue Val;
      if (Status S = parseValue(Val, Depth + 1); !S.isOk())
        return S;
      Out.set(std::move(Key), std::move(Val));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return Status::ok();
      return err("expected ',' or '}' in object");
    }
  }

  Status parseArray(JsonValue &Out, uint32_t Depth) {
    if (faultFires(fault::ServeRequestParse))
      return Status::outOfMemory("request parse: allocation failed");
    ++Pos; // '['
    Out = JsonValue::array();
    skipWs();
    if (consume(']'))
      return Status::ok();
    for (;;) {
      skipWs();
      JsonValue Val;
      if (Status S = parseValue(Val, Depth + 1); !S.isOk())
        return S;
      Out.push(std::move(Val));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Status::ok();
      return err("expected ',' or ']' in array");
    }
  }

  static int hexDigit(char C) {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  }

  Status parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (!done()) {
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return Status::ok();
      }
      if (C < 0x20) // raw control byte — embedded NULs land here
        return err("raw control byte inside string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos; // backslash
      if (done())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return err("truncated \\u escape");
        uint32_t Code = 0;
        for (int I = 0; I != 4; ++I) {
          int D = hexDigit(Text[Pos + I]);
          if (D < 0)
            return err("invalid \\u escape");
          Code = Code * 16 + static_cast<uint32_t>(D);
        }
        Pos += 4;
        // UTF-8 encode the BMP code point; surrogates are passed through
        // as replacement-free three-byte sequences (the protocol never
        // round-trips them, and rejecting would complicate nothing).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return err("invalid escape sequence");
      }
    }
    return err("unterminated string");
  }

  Status parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (consume('-')) {
    }
    bool Digits = false;
    while (!done() && peek() >= '0' && peek() <= '9') {
      ++Pos;
      Digits = true;
    }
    if (!Digits)
      return err("invalid number");
    bool Integral = true;
    if (consume('.')) {
      Integral = false;
      bool Frac = false;
      while (!done() && peek() >= '0' && peek() <= '9') {
        ++Pos;
        Frac = true;
      }
      if (!Frac)
        return err("invalid number (bare decimal point)");
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      Integral = false;
      ++Pos;
      if (!done() && (peek() == '+' || peek() == '-'))
        ++Pos;
      bool Exp = false;
      while (!done() && peek() >= '0' && peek() <= '9') {
        ++Pos;
        Exp = true;
      }
      if (!Exp)
        return err("invalid number (empty exponent)");
    }
    std::string Tok(Text.substr(Start, Pos - Start));
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long I = std::strtoll(Tok.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = JsonValue::number(static_cast<int64_t>(I));
        return Status::ok();
      }
      // Out-of-int64-range integers fall through to double.
    }
    char *End = nullptr;
    double D = std::strtod(Tok.c_str(), &End);
    if (!End || *End != '\0' || !std::isfinite(D))
      return err("number out of range");
    Out = JsonValue::number(D);
    return Status::ok();
  }

  std::string_view Text;
  const JsonLimits &Limits;
  size_t Pos = 0;
};

void renderString(std::string_view S, std::string &Out) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

} // namespace

Status stcfa::serve::parseJson(std::string_view Text, JsonValue &Out,
                               const JsonLimits &Limits) {
  return Parser(Text, Limits).run(Out);
}

void stcfa::serve::renderJson(const JsonValue &V, std::string &Out) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    return;
  case JsonValue::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    return;
  case JsonValue::Kind::Number:
    if (V.isInt()) {
      Out += std::to_string(V.asInt());
    } else {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.17g", V.asDouble());
      Out += Buf;
    }
    return;
  case JsonValue::Kind::String:
    renderString(V.asString(), Out);
    return;
  case JsonValue::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &E : V.items()) {
      if (!First)
        Out += ',';
      First = false;
      renderJson(E, Out);
    }
    Out += ']';
    return;
  }
  case JsonValue::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Key, Val] : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      renderString(Key, Out);
      Out += ':';
      renderJson(Val, Out);
    }
    Out += '}';
    return;
  }
  }
}

std::string stcfa::serve::renderJson(const JsonValue &V) {
  std::string Out;
  renderJson(V, Out);
  return Out;
}
