//===-- serve/Protocol.h - Serve-mode request/reply protocol ----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON protocol of `stcfa --serve` (docs/SERVE.md).
/// One request per line:
///
/// \code
///   {"id": 1, "verb": "load",  "params": {"source": "..."}}
///   {"id": 2, "verb": "edit",  "params": {"op": "replace", "name": "f",
///                                         "text": "let f = ...;"}}
///   {"id": 2, "verb": "query", "params": {"kind": "labels"}}
///   {"id": 3, "verb": "lint",  "params": {"passes": ["dead-function"]}}
///   {"id": 4, "verb": "metrics"}
///   {"id": 5, "verb": "shutdown"}
/// \endcode
///
/// One reply per request (order may interleave across concurrent
/// requests; match on `id`):
///
/// \code
///   {"id": 2, "ok": true,  "result": {...}}
///   {"id": 7, "ok": false, "error": {"code": "invalid-argument",
///                                    "message": "..."}}
/// \endcode
///
/// Error codes are the `statusCodeName()` vocabulary, so daemon replies,
/// driver exit codes, and degradation reports all speak one language.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SERVE_PROTOCOL_H
#define STCFA_SERVE_PROTOCOL_H

#include "serve/Json.h"
#include "support/Status.h"

#include <string>

namespace stcfa {
namespace serve {

/// The request verbs the daemon understands.
enum class Verb : uint8_t { Load, Edit, Query, Lint, Metrics, Shutdown };

/// A validated request envelope.  `Params` points into `Doc` (which owns
/// the whole parsed request), so a `ServeRequest` is self-contained.
struct ServeRequest {
  JsonValue Doc;               ///< the whole parsed request object
  JsonValue Id;                ///< echoed verbatim; null when absent
  Verb V = Verb::Metrics;
  const JsonValue *Params = nullptr; ///< the `params` object, or null
};

/// Validates a parsed request document into \p Out: must be an object,
/// `verb` must be a known string, `params` (when present) must be an
/// object, `id` (when present) must be a number or string.  On failure
/// \p Out.Id still carries whatever id could be salvaged, so the error
/// reply can be correlated.
Status validateRequest(JsonValue Doc, ServeRequest &Out);

/// `{"id":<id>,"ok":true,"result":<result>}`.
std::string renderOkReply(const JsonValue &Id, const JsonValue &Result);

/// `{"id":<id>,"ok":true,"result":<raw JSON>}` — splices a
/// pre-serialized JSON document (the metrics snapshot) without
/// re-parsing it.
std::string renderRawOkReply(const JsonValue &Id, const std::string &Raw);

/// `{"id":<id>,"ok":false,"error":{"code":...,"message":...}}`.
std::string renderErrorReply(const JsonValue &Id, const Status &S);

} // namespace serve
} // namespace stcfa

#endif // STCFA_SERVE_PROTOCOL_H
