//===-- driver/Main.cpp - The stcfa command-line tool ---------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `stcfa`: parse a mini-ML program, run an analysis, answer queries.
///
/// \code
///   stcfa program.stml --query=all-labels
///   stcfa --corpus=cubic:8 --analysis=standard --stats
///   echo 'let id = fn x => x in id id' | stcfa - --query=labels
///   stcfa program.stml --run
/// \endcode
///
//===----------------------------------------------------------------------===//

#include "analysis/DeadCodeAwareCFA.h"
#include "analysis/HybridCFA.h"
#include "analysis/StandardCFA.h"
#include "apps/CallGraph.h"
#include "apps/EffectsAnalysis.h"
#include "apps/KLimitedCFA.h"
#include "ast/Printer.h"
#include "core/FrozenGraph.h"
#include "core/QueryEngine.h"
#include "core/Reachability.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "testgen/ShapeGen.h"
#include "interp/Interpreter.h"
#include "lint/LintEngine.h"
#include "lint/Render.h"
#include "core/LabelSetKernel.h"
#include "parser/Parser.h"
#include "poly/Polyvariant.h"
#include "sema/Infer.h"
#include "serve/Server.h"
#include "snapshot/Snapshot.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "unify/UnificationCFA.h"

#include <cstdio>
#include <fstream>
#include <iostream> // the one tool entry point reads stdin
#include <iterator>
#include <sstream>
#include <string>

using namespace stcfa;

namespace {

struct Options {
  std::string InputFile;
  std::string Corpus;
  std::string Analysis = "subtransitive";
  std::string Query = "labels";
  std::string Congruence = "bytype";
  std::string Policy = "paper";
  unsigned Threads = 1;
  /// Batch size above which batched queries dispatch to the label-set
  /// kernel; -1 = flag not given (engine default), 0 = kernel disabled.
  int64_t KernelThreshold = -1;
  /// Level-merge threshold for the kernel's chunked scheduler; -1 =
  /// flag not given (kernel default), <= 1 = per-level barriers.
  int64_t KernelChunkRows = -1;
  /// `--gen-shape=<family>:<N>[:<seed>]`: print the generated stress
  /// program and exit.
  std::string GenShape;
  /// Wall-clock budget for the whole analysis+query pipeline; -1 = none.
  int64_t TimeoutMs = -1;
  /// Node budget for the subtransitive close phase; 0 = unlimited.
  uint64_t CloseBudget = 0;
  /// Degradation mode for --analysis=hybrid; empty = flag not given.
  std::string Degrade;
  /// Chrome-tracing span export path; empty = tracing stays disabled.
  std::string TraceJson;
  /// Metrics snapshot export path; empty = no export.
  std::string MetricsJson;
  bool Frozen = false;
  bool Stats = false;
  bool Run = false;
  bool Print = false;
  bool DumpGraph = false;
  /// `--lint[=pass,...]`: run the checker passes instead of a query.
  bool Lint = false;
  /// Selected pass ids; empty = all registered passes.
  std::vector<std::string> LintPasses;
  std::string LintFormat = "text";
  /// Tracks whether the flag was given explicitly, for conflict checks.
  bool LintFormatGiven = false;
  bool QueryGiven = false;
  bool CongruenceGiven = false;
  bool PolicyGiven = false;
  bool AnalysisGiven = false;
  /// `--save-snapshot=<file>`: persist the frozen graph after analysis.
  std::string SaveSnapshot;
  /// `--load-snapshot=<file>`: serve queries from a persisted snapshot,
  /// skipping parse/close/freeze entirely.
  std::string LoadSnapshot;
  /// `--snapshot-cache[=<dir>]`: content-addressed snapshot reuse.
  bool SnapshotCache = false;
  std::string SnapshotDir;
  /// `--snapshot-cache-max-mb=<n>`: cache size cap, LRU-by-mtime
  /// eviction after each fill; 0 = uncapped.
  uint64_t SnapshotCacheMaxMb = 512;
  /// `--serve`: the long-running analysis daemon (docs/SERVE.md).
  bool Serve = false;
  /// Admission soft budget in governor node units.
  uint64_t ServeMaxCost = 4u << 20;
  /// Longest accepted request line, in MiB.
  uint64_t ServeMaxRequestMb = 32;

  /// True when any resource-governor flag was given: only then do the
  /// degradation exit codes (3-6) apply, so ungoverned invocations keep
  /// the historical 0/1/2 behaviour.
  bool governed() const {
    return TimeoutMs >= 0 || CloseBudget > 0 || !Degrade.empty();
  }
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [<file>|-] [options]\n"
      "  --corpus=<name>        life | lexgen[:states] | cubic:N |\n"
      "                         joinpoint:N | random:SEED |\n"
      "                         wide:N | deep:N | diamond:N | skewed:N\n"
      "                         (condensation-shape stress programs;\n"
      "                         optional :seed suffix)\n"
      "  --gen-shape=<spec>     print the wide/deep/diamond/skewed:N\n"
      "                         stress program to stdout and exit\n"
      "  --analysis=<name>      subtransitive (default) | standard |\n"
      "                         unify | poly | hybrid\n"
      "  --query=<q>            labels (root label set, default) |\n"
      "                         all-labels | effects | called-once |\n"
      "                         klimited:K | callgraph | dead-code\n"
      "  --lint[=p1,p2,...]     run the checker passes (docs/LINT.md)\n"
      "                         instead of a query; default all of:\n"
      "                         dead-function, unused-binding,\n"
      "                         applied-non-function, called-once,\n"
      "                         impure-in-pure, escaping-function\n"
      "  --lint-format=<f>      text (default) | json | sarif\n"
      "  --congruence=<c>       none | bytype (default) | bybase\n"
      "  --policy=<p>           paper (default) | nodeexists | undemanded\n"
      "  --frozen               serve queries from a frozen CSR snapshot\n"
      "  --threads=<n>          query-engine worker lanes (implies --frozen)\n"
      "  --kernel-threshold=<n> batch size above which batched queries use\n"
      "                         the word-parallel label-set kernel\n"
      "                         (0 disables the kernel; default 16)\n"
      "  --kernel-chunk-rows=<n>\n"
      "                         kernel scheduler merges consecutive DAG\n"
      "                         levels while their rows total <= n, cutting\n"
      "                         barriers/polls on deep condensations\n"
      "                         (<= 1 restores per-level; default 256)\n"
      "  --timeout-ms=<n>       wall-clock deadline over analysis + queries\n"
      "  --close-budget=<n>     node budget for the subtransitive close\n"
      "                         (subtransitive/poly analyses only)\n"
      "  --degrade=<m>          off | standard (default) | partial —\n"
      "                         hybrid degradation ladder (hybrid only;\n"
      "                         'off' conflicts with --timeout-ms)\n"
      "  --save-snapshot=<file> persist the frozen graph (plus name tables\n"
      "                         and the label-set kernel matrix) to an\n"
      "                         mmap-able snapshot (implies --frozen)\n"
      "  --load-snapshot=<file> serve --query=labels|all-labels straight\n"
      "                         from a snapshot: no parse, no close, no\n"
      "                         freeze (docs/SNAPSHOT.md)\n"
      "  --snapshot-cache[=<d>] content-addressed snapshot reuse keyed on\n"
      "                         source + configuration; default directory\n"
      "                         $STCFA_SNAPSHOT_DIR or ~/.cache/stcfa\n"
      "  --snapshot-cache-max-mb=<n>\n"
      "                         cache size cap, enforced after each fill by\n"
      "                         LRU-by-mtime eviction (0 = uncapped;\n"
      "                         default 512)\n"
      "  --serve                long-running daemon: newline-delimited JSON\n"
      "                         requests on stdin, one reply line each;\n"
      "                         programs arrive via 'load' requests\n"
      "                         (docs/SERVE.md)\n"
      "  --serve-max-cost=<n>   admission soft budget in graph node units:\n"
      "                         above it queries degrade to universal sets,\n"
      "                         above twice it requests are shed\n"
      "                         (default 4194304)\n"
      "  --serve-max-request-mb=<n>\n"
      "                         longest accepted request line (default 32)\n"
      "  --trace-json=<file>    write stage spans as a Chrome-tracing /\n"
      "                         Perfetto JSON array (docs/OBSERVABILITY.md)\n"
      "  --metrics-json=<file>  write the process metrics snapshot\n"
      "  --stats                print program/type/graph statistics\n"
      "  --print                pretty-print the parsed program\n"
      "  --dump-graph           print every subtransitive edge\n"
      "  --run                  interpret the program\n"
      "exit codes (3-6 only under --timeout-ms/--close-budget/--degrade):\n"
      "  0  success             1  input error        2  usage/flag error\n"
      "  3  deadline/cancelled  4  served by standard-cubic fallback\n"
      "  5  served by bounded partial answer\n"
      "  6  budget exhausted with no degradation permitted\n"
      "  7  lint findings at error severity (--lint only)\n",
      Argv0);
  return 2;
}

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

std::string loadInput(const Options &Opts, bool &Ok) {
  Ok = true;
  if (!Opts.Corpus.empty()) {
    if (Opts.Corpus == "life")
      return lifeProgram();
    if (Opts.Corpus == "lexgen")
      return makeLexgenLike();
    if (startsWith(Opts.Corpus, "lexgen:"))
      return makeLexgenLike(std::stoi(Opts.Corpus.substr(7)));
    if (startsWith(Opts.Corpus, "cubic:"))
      return makeCubicFamily(std::stoi(Opts.Corpus.substr(6)));
    if (startsWith(Opts.Corpus, "joinpoint:"))
      return makeJoinPointFamily(std::stoi(Opts.Corpus.substr(10)));
    if (startsWith(Opts.Corpus, "random:")) {
      RandomProgramOptions R;
      R.Seed = std::stoull(Opts.Corpus.substr(7));
      R.UseRefs = true;
      R.UseEffects = true;
      return makeRandomProgram(R);
    }
    if (ShapeSpec Spec; parseShapeSpec(Opts.Corpus, Spec))
      return makeShapeProgram(Spec);
    std::fprintf(stderr, "error: unknown corpus '%s'\n", Opts.Corpus.c_str());
    Ok = false;
    return "";
  }
  if (Opts.InputFile.empty() || Opts.InputFile == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    return Buf.str();
  }
  std::ifstream In(Opts.InputFile);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Opts.InputFile.c_str());
    Ok = false;
    return "";
  }
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

std::string labelName(const Module &M, LabelId L) {
  const auto *Lam = cast<LamExpr>(M.expr(M.lamOfLabel(L)));
  std::string Out = "fn#" + std::to_string(L.index()) + "(";
  Out += M.text(M.var(Lam->param()).Name);
  SourceLoc Loc = M.expr(M.lamOfLabel(L))->loc();
  if (Loc.isValid())
    Out += "@" + std::to_string(Loc.Line) + ":" + std::to_string(Loc.Col);
  return Out + ")";
}

std::string renderSet(const Module &M, const DenseBitset &Set) {
  std::string Out = "{";
  bool First = true;
  Set.forEach([&](uint32_t L) {
    if (!First)
      Out += ", ";
    First = false;
    Out += labelName(M, LabelId(L));
  });
  return Out + "}";
}

/// Uniform label-set access across the analyses.
struct AnalysisResult {
  std::unique_ptr<StandardCFA> Std;
  std::unique_ptr<UnificationCFA> Uni;
  std::unique_ptr<SubtransitiveGraph> Graph;
  std::unique_ptr<PolyvariantCFA> Poly;
  std::unique_ptr<HybridCFA> Hybrid;
  std::unique_ptr<Reachability> Reach;
  std::unique_ptr<FrozenGraph> Snapshot;
  std::unique_ptr<QueryEngine> Engine;
  double AnalysisMs = 0;

  DenseBitset labels(ExprId E) {
    if (Std)
      return Std->labelSet(E);
    if (Uni)
      return Uni->labelSet(E);
    if (Hybrid)
      return Hybrid->labelSet(E);
    if (Engine)
      return Engine->labelsOf(E);
    return Reach->labelsOf(E);
  }
  const SubtransitiveGraph *graph() const {
    if (Graph)
      return Graph.get();
    if (Poly)
      return &Poly->graph();
    if (Hybrid)
      return Hybrid->graph();
    return nullptr;
  }
  /// The frozen snapshot / query engine, when `--frozen` produced one
  /// (the hybrid analysis always freezes on subtransitive success).
  const FrozenGraph *frozen() const {
    if (Snapshot)
      return Snapshot.get();
    if (Hybrid)
      return Hybrid->frozen();
    return nullptr;
  }
  QueryEngine *engine() {
    if (Engine)
      return Engine.get();
    if (Hybrid)
      return Hybrid->queryEngine();
    return nullptr;
  }
};

/// The canonical configuration string hashed into the snapshot cache key:
/// every option that shapes the frozen tables, nothing that doesn't.
std::string snapshotConfigString(const Options &O) {
  return "analysis=" + O.Analysis + ";congruence=" + O.Congruence +
         ";policy=" + O.Policy;
}

/// `renderSet` over the snapshot's persisted label names (no Module).
std::string renderSnapshotSet(const LoadedSnapshot &Snap,
                              const DenseBitset &Set) {
  std::string Out = "{";
  bool First = true;
  Set.forEach([&](uint32_t L) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Snap.labelName(L);
  });
  return Out + "}";
}

/// Serves `--query=labels|all-labels` straight from a loaded snapshot:
/// zero-copy query engine over the mapping, persisted kernel rows adopted
/// as the batch backend, output byte-identical to the in-memory path.
int serveFromSnapshot(const Options &Opts, const LoadedSnapshot &Snap) {
  const FrozenGraph &F = Snap.frozen();
  QueryEngine Engine(F, Opts.Threads);
  if (Opts.KernelThreshold >= 0)
    Engine.setKernelThreshold(static_cast<size_t>(Opts.KernelThreshold));
  if (Opts.KernelChunkRows >= 0)
    Engine.setKernelChunkRows(static_cast<uint32_t>(Opts.KernelChunkRows));
  bool KernelAdopted = false;
  if (auto Kern = Snap.adoptKernel()) {
    Engine.adoptKernel(std::move(Kern));
    KernelAdopted = true;
  }
  if (Opts.Stats)
    std::printf("snapshot: %u nodes / %llu edges served zero-copy, %u "
                "query lane(s), kernel rows %s\n",
                F.numNodes(), (unsigned long long)F.numEdges(),
                Engine.threads(), KernelAdopted ? "adopted" : "absent");

  Deadline D = Opts.TimeoutMs >= 0 ? Deadline::afterMillis(Opts.TimeoutMs)
                                   : Deadline::infinite();
  int ExitCode = 0;
  Timer QueryTimer;
  if (Opts.Query == "labels") {
    std::printf("L(root) = %s\n",
                renderSnapshotSet(Snap, Engine.labelsOf(Snap.rootExpr()))
                    .c_str());
  } else { // all-labels (the flag validation admits nothing else)
    std::vector<ExprId> Es;
    Es.reserve(F.numExprs());
    for (uint32_t I = 0; I != F.numExprs(); ++I)
      Es.push_back(ExprId(I));
    BatchOutcome Outcome;
    std::vector<DenseBitset> Sets;
    if (Opts.TimeoutMs >= 0) {
      BatchControl BC;
      BC.D = D;
      Sets = Engine.labelsOfBatch(Es, BC, Outcome);
    } else {
      Sets = Engine.labelsOfBatch(Es);
      Outcome.Done.assign(Es.size(), true);
    }
    for (uint32_t I = 0; I != F.numExprs(); ++I) {
      if (!Outcome.Done[I] || Sets[I].empty())
        continue;
      std::printf("%-18s %s\n", std::string(Snap.exprName(I)).c_str(),
                  renderSnapshotSet(Snap, Sets[I]).c_str());
    }
    if (Opts.TimeoutMs >= 0 && !Outcome.S.isOk()) {
      std::fprintf(stderr,
                   "note: batch stopped early: %s (%llu of %u answered)\n",
                   Outcome.S.toString().c_str(),
                   (unsigned long long)Outcome.Completed, F.numExprs());
      ExitCode = 3;
    }
  }
  if (Opts.Stats)
    std::printf("queries: %.3f ms\n", QueryTimer.millis());
  return ExitCode;
}

/// `--load-snapshot --lint`: the frozen tables come from the mapping,
/// the AST from reparsing the named input (already hash-verified against
/// the snapshot header, so the two line up).
int lintOverSnapshot(const Options &Opts, const LoadedSnapshot &Snap,
                     const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  if (!M) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }
  DiagnosticEngine InferDiags;
  (void)inferTypes(*M, InferDiags);
  const FrozenGraph &F = Snap.frozen();
  if (M->numExprs() != F.numExprs()) {
    std::fprintf(stderr,
                 "error: snapshot '%s' does not match the given input "
                 "(%u vs %u occurrences)\n",
                 Opts.LoadSnapshot.c_str(), F.numExprs(), M->numExprs());
    return 1;
  }
  LintEngine Lint(*M, F);
  LintOptions LO;
  LO.Passes = Opts.LintPasses;
  LO.D = Opts.TimeoutMs >= 0 ? Deadline::afterMillis(Opts.TimeoutMs)
                             : Deadline::infinite();
  LO.Threads = Opts.Threads;
  Timer LintTimer;
  LintResult LR = Lint.run(LO);
  std::string InputName = !Opts.InputFile.empty() && Opts.InputFile != "-"
                              ? Opts.InputFile
                              : "corpus:" + Opts.Corpus;
  std::string Rendered = Opts.LintFormat == "json"
                             ? renderLintJson(LR, InputName)
                         : Opts.LintFormat == "sarif"
                             ? renderLintSarif(LR, InputName)
                             : renderLintText(LR, InputName);
  std::fputs(Rendered.c_str(), stdout);
  if (Opts.Stats)
    std::printf("lint: %u pass(es) over snapshot in %.3f ms\n",
                (unsigned)LR.Reports.size(), LintTimer.millis());
  if (LR.NumErrors > 0)
    return 7;
  if (LR.anyPartial() && Opts.governed())
    return 3;
  return 0;
}

/// Builds the complete label-set kernel for \p F and persists graph +
/// kernel to \p Path.  Shared by `--save-snapshot` and the cache-miss
/// fill; \p Key lands in the header for loader-side verification.
Status persistSnapshot(const std::string &Path, const FrozenGraph &F,
                       const Module &M, uint64_t Key, unsigned Threads) {
  SnapshotWriteOptions WO;
  WO.ContentHash = Key;
  std::unique_ptr<LabelSetKernel> Kern;
  if (M.numLabels() != 0) {
    Kern = std::make_unique<LabelSetKernel>(F, Threads);
    if (Kern->run().isOk())
      WO.Kernel = Kern.get();
    else
      Kern.reset(); // persist the graph alone; loads just skip adoption
  }
  return writeSnapshot(Path, F, M, WO);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (startsWith(A, "--corpus="))
      Opts.Corpus = A.substr(9);
    else if (startsWith(A, "--analysis=")) {
      Opts.Analysis = A.substr(11);
      Opts.AnalysisGiven = true;
    } else if (startsWith(A, "--query=")) {
      Opts.Query = A.substr(8);
      Opts.QueryGiven = true;
    } else if (A == "--lint")
      Opts.Lint = true;
    else if (startsWith(A, "--lint=")) {
      Opts.Lint = true;
      std::string List = A.substr(7);
      for (size_t Pos = 0; Pos <= List.size();) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        if (Comma > Pos)
          Opts.LintPasses.push_back(List.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
      if (Opts.LintPasses.empty()) {
        std::fprintf(stderr, "error: --lint= expects a pass list; plain "
                             "--lint runs every pass\n");
        return 2;
      }
    } else if (startsWith(A, "--lint-format=")) {
      Opts.LintFormat = A.substr(14);
      Opts.LintFormatGiven = true;
    }
    else if (startsWith(A, "--congruence=")) {
      Opts.Congruence = A.substr(13);
      Opts.CongruenceGiven = true;
    } else if (startsWith(A, "--policy=")) {
      Opts.Policy = A.substr(9);
      Opts.PolicyGiven = true;
    } else if (startsWith(A, "--save-snapshot=")) {
      Opts.SaveSnapshot = A.substr(16);
      if (Opts.SaveSnapshot.empty()) {
        std::fprintf(stderr, "error: --save-snapshot expects a file path\n");
        return 2;
      }
      Opts.Frozen = true;
    } else if (startsWith(A, "--load-snapshot=")) {
      Opts.LoadSnapshot = A.substr(16);
      if (Opts.LoadSnapshot.empty()) {
        std::fprintf(stderr, "error: --load-snapshot expects a file path\n");
        return 2;
      }
    } else if (A == "--snapshot-cache") {
      Opts.SnapshotCache = true;
      Opts.Frozen = true;
    } else if (startsWith(A, "--snapshot-cache=")) {
      Opts.SnapshotCache = true;
      Opts.SnapshotDir = A.substr(17);
      Opts.Frozen = true;
      if (Opts.SnapshotDir.empty()) {
        std::fprintf(stderr,
                     "error: --snapshot-cache= expects a directory; plain "
                     "--snapshot-cache uses the default cache\n");
        return 2;
      }
    } else if (startsWith(A, "--snapshot-cache-max-mb=")) {
      std::string N = A.substr(24);
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr,
                     "error: --snapshot-cache-max-mb expects a number, got "
                     "'%s'\n",
                     N.c_str());
        return 2;
      }
      Opts.SnapshotCacheMaxMb = std::stoull(N);
    } else if (A == "--serve") {
      Opts.Serve = true;
    } else if (startsWith(A, "--serve-max-cost=")) {
      std::string N = A.substr(17);
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr,
                     "error: --serve-max-cost expects a number, got '%s'\n",
                     N.c_str());
        return 2;
      }
      Opts.ServeMaxCost = std::stoull(N);
      if (Opts.ServeMaxCost == 0) {
        std::fprintf(stderr, "error: --serve-max-cost must be positive\n");
        return 2;
      }
    } else if (startsWith(A, "--serve-max-request-mb=")) {
      std::string N = A.substr(23);
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr,
                     "error: --serve-max-request-mb expects a number, got "
                     "'%s'\n",
                     N.c_str());
        return 2;
      }
      Opts.ServeMaxRequestMb = std::stoull(N);
      if (Opts.ServeMaxRequestMb == 0) {
        std::fprintf(stderr,
                     "error: --serve-max-request-mb must be positive\n");
        return 2;
      }
    } else if (startsWith(A, "--threads=")) {
      std::string N = A.substr(10);
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        fprintf(stderr, "error: --threads expects a number, got '%s'\n",
                N.c_str());
        return 1;
      }
      Opts.Threads = std::stoul(N);
      if (Opts.Threads == 0)
        Opts.Threads = 1;
      Opts.Frozen = true;
    } else if (startsWith(A, "--kernel-threshold=")) {
      std::string N = A.substr(19);
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr,
                     "error: --kernel-threshold expects a number, got '%s'\n",
                     N.c_str());
        return 2;
      }
      Opts.KernelThreshold = std::stoll(N);
    } else if (startsWith(A, "--kernel-chunk-rows=")) {
      std::string N = A.substr(20);
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr,
                     "error: --kernel-chunk-rows expects a number, got '%s'\n",
                     N.c_str());
        return 2;
      }
      Opts.KernelChunkRows = std::stoll(N);
    } else if (startsWith(A, "--gen-shape=")) {
      Opts.GenShape = A.substr(12);
      if (Opts.GenShape.empty()) {
        std::fprintf(stderr, "error: --gen-shape expects "
                             "wide|deep|diamond|skewed:N[:seed]\n");
        return 2;
      }
    } else if (startsWith(A, "--timeout-ms=")) {
      std::string N = A.substr(13);
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "error: --timeout-ms expects a number, got "
                             "'%s'\n",
                     N.c_str());
        return 2;
      }
      Opts.TimeoutMs = std::stoll(N);
    } else if (startsWith(A, "--close-budget=")) {
      std::string N = A.substr(15);
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "error: --close-budget expects a number, got "
                             "'%s'\n",
                     N.c_str());
        return 2;
      }
      Opts.CloseBudget = std::stoull(N);
      if (Opts.CloseBudget == 0) {
        std::fprintf(stderr, "error: --close-budget must be positive\n");
        return 2;
      }
    } else if (startsWith(A, "--degrade=")) {
      Opts.Degrade = A.substr(10);
    } else if (startsWith(A, "--trace-json=")) {
      Opts.TraceJson = A.substr(13);
      if (Opts.TraceJson.empty()) {
        std::fprintf(stderr, "error: --trace-json expects a file path\n");
        return 2;
      }
    } else if (startsWith(A, "--metrics-json=")) {
      Opts.MetricsJson = A.substr(15);
      if (Opts.MetricsJson.empty()) {
        std::fprintf(stderr, "error: --metrics-json expects a file path\n");
        return 2;
      }
    } else if (A == "--frozen")
      Opts.Frozen = true;
    else if (A == "--stats")
      Opts.Stats = true;
    else if (A == "--run")
      Opts.Run = true;
    else if (A == "--print")
      Opts.Print = true;
    else if (A == "--dump-graph")
      Opts.DumpGraph = true;
    else if (A == "--help" || A == "-h")
      return usage(Argv[0]);
    else if (!startsWith(A, "--") && Opts.InputFile.empty())
      Opts.InputFile = A;
    else
      return usage(Argv[0]);
  }

  // `--gen-shape` is a pure generator invocation: print the stress
  // program (the same source `--corpus=<spec>` would analyze) and exit.
  if (!Opts.GenShape.empty()) {
    ShapeSpec Spec;
    if (!parseShapeSpec(Opts.GenShape, Spec)) {
      std::fprintf(stderr,
                   "error: --gen-shape expects wide|deep|diamond|skewed:"
                   "N[:seed], got '%s'\n",
                   Opts.GenShape.c_str());
      return 2;
    }
    std::fputs(makeShapeProgram(Spec).c_str(), stdout);
    return 0;
  }

  // Reject mutually inconsistent flag combinations up front, before any
  // work: a clear message and exit 2 beat a silently-ignored flag.
  if (!Opts.Degrade.empty() && Opts.Degrade != "off" &&
      Opts.Degrade != "standard" && Opts.Degrade != "partial") {
    std::fprintf(stderr,
                 "error: --degrade expects off|standard|partial, got '%s'\n",
                 Opts.Degrade.c_str());
    return 2;
  }
  if (!Opts.Degrade.empty() && Opts.Analysis != "hybrid" && !Opts.Serve) {
    std::fprintf(stderr,
                 "error: --degrade only applies to --analysis=hybrid or "
                 "--serve (got --analysis=%s)\n",
                 Opts.Analysis.c_str());
    return 2;
  }
  if (Opts.Serve) {
    // The daemon owns the whole pipeline per 'load' request; every flag
    // that names an input or picks a batch output mode conflicts.
    const char *Conflict = nullptr;
    if (!Opts.InputFile.empty() || !Opts.Corpus.empty())
      Conflict = "an input argument (programs arrive via 'load' requests)";
    else if (Opts.QueryGiven)
      Conflict = "--query (queries arrive as 'query' requests)";
    else if (Opts.Lint)
      Conflict = "--lint (lint arrives as 'lint' requests)";
    else if (Opts.Run)
      Conflict = "--run";
    else if (Opts.Print)
      Conflict = "--print";
    else if (Opts.DumpGraph)
      Conflict = "--dump-graph";
    else if (!Opts.SaveSnapshot.empty())
      Conflict = "--save-snapshot (use --snapshot-cache for warm restarts)";
    else if (!Opts.LoadSnapshot.empty())
      Conflict = "--load-snapshot (use --snapshot-cache for warm restarts)";
    else if (Opts.AnalysisGiven)
      Conflict = "--analysis (the daemon always runs the hybrid ladder)";
    else if (Opts.CongruenceGiven || Opts.PolicyGiven)
      Conflict = "--congruence/--policy (the daemon's snapshot keys pin "
                 "the default configuration)";
    else if (Opts.CloseBudget > 0)
      Conflict = "--close-budget (use --serve-max-cost for admission)";
    if (Conflict) {
      std::fprintf(stderr, "error: --serve conflicts with %s\n", Conflict);
      return 2;
    }
  }
  if (Opts.Degrade == "off" && Opts.TimeoutMs >= 0) {
    std::fprintf(stderr,
                 "error: --degrade=off conflicts with --timeout-ms: a "
                 "deadline needs a degradation rung to fall to; drop one "
                 "of the flags\n");
    return 2;
  }
  if (Opts.CloseBudget > 0 && Opts.Analysis != "subtransitive" &&
      Opts.Analysis != "poly") {
    std::fprintf(stderr,
                 "error: --close-budget applies to the subtransitive close "
                 "(--analysis=subtransitive|poly); --analysis=%s has no "
                 "close phase it could bound\n",
                 Opts.Analysis.c_str());
    return 2;
  }
  if (Opts.LintFormatGiven && !Opts.Lint) {
    std::fprintf(stderr,
                 "error: --lint-format has no effect without --lint\n");
    return 2;
  }
  if (Opts.Lint) {
    if (Opts.QueryGiven) {
      std::fprintf(stderr, "error: --lint replaces the query path; drop "
                           "--query or --lint\n");
      return 2;
    }
    if (Opts.Analysis != "subtransitive" && Opts.Analysis != "poly") {
      std::fprintf(stderr,
                   "error: --lint consumes the frozen subtransitive graph "
                   "(--analysis=subtransitive|poly); --analysis=%s builds "
                   "none\n",
                   Opts.Analysis.c_str());
      return 2;
    }
    if (Opts.LintFormat != "text" && Opts.LintFormat != "json" &&
        Opts.LintFormat != "sarif") {
      std::fprintf(stderr,
                   "error: --lint-format expects text|json|sarif, got '%s'\n",
                   Opts.LintFormat.c_str());
      return 2;
    }
    for (const std::string &Id : Opts.LintPasses)
      if (!LintEngine::findPass(Id)) {
        std::string Known;
        for (const LintPassInfo &P : LintEngine::passes())
          Known += (Known.empty() ? "" : ", ") + std::string(P.Id);
        std::fprintf(stderr, "error: unknown lint pass '%s' (known: %s)\n",
                     Id.c_str(), Known.c_str());
        return 2;
      }
    // Lint serves from the CSR snapshot; freezing is part of the mode.
    Opts.Frozen = true;
  }
  if (!Opts.LoadSnapshot.empty() || Opts.SnapshotCache) {
    // A served snapshot has no Module and no live graph, so everything
    // that rebuilds or walks one conflicts; a snapshot built under a
    // different close budget or degradation ladder would silently answer
    // for the wrong configuration, so those flags fail fast too.
    const char *Mode =
        !Opts.LoadSnapshot.empty() ? "--load-snapshot" : "--snapshot-cache";
    const char *Conflict = nullptr;
    if (Opts.CloseBudget > 0)
      Conflict = "--close-budget";
    else if (!Opts.Degrade.empty())
      Conflict = "--degrade";
    else if (Opts.Lint && Opts.LoadSnapshot.empty())
      Conflict = "--lint"; // lint-over-snapshot works for --load-snapshot
                           // only: it reparses the named input
    else if (Opts.Run)
      Conflict = "--run";
    else if (Opts.Print)
      Conflict = "--print";
    else if (Opts.DumpGraph)
      Conflict = "--dump-graph";
    else if (Opts.AnalysisGiven && Opts.Analysis != "subtransitive" &&
             Opts.Analysis != "poly")
      Conflict = "--analysis";
    if (Conflict) {
      std::fprintf(stderr,
                   "error: %s conflicts with %s: the flag needs a rebuilt "
                   "(or live) pipeline, but snapshots are served as-is; "
                   "drop the flag or rebuild without the snapshot\n",
                   Mode, Conflict);
      return 2;
    }
    if (!Opts.Lint && Opts.Query != "labels" && Opts.Query != "all-labels") {
      std::fprintf(stderr,
                   "error: %s serves label-set queries only "
                   "(--query=labels|all-labels), got --query=%s\n",
                   Mode, Opts.Query.c_str());
      return 2;
    }
  }
  if (!Opts.LoadSnapshot.empty() && Opts.Lint && Opts.Corpus.empty() &&
      (Opts.InputFile.empty() || Opts.InputFile == "-")) {
    std::fprintf(stderr,
                 "error: --load-snapshot --lint needs the source named too "
                 "(a file or --corpus): the checker passes walk the AST, "
                 "which the snapshot does not persist\n");
    return 2;
  }
  if (!Opts.LoadSnapshot.empty()) {
    if (!Opts.SaveSnapshot.empty() || Opts.SnapshotCache) {
      std::fprintf(stderr,
                   "error: --load-snapshot conflicts with %s: loading "
                   "skips the pipeline that would produce the snapshot\n",
                   !Opts.SaveSnapshot.empty() ? "--save-snapshot"
                                              : "--snapshot-cache");
      return 2;
    }
    if (Opts.CongruenceGiven || Opts.PolicyGiven) {
      std::fprintf(stderr,
                   "error: --load-snapshot ignores %s: the snapshot was "
                   "built under its own configuration; rebuild with "
                   "--save-snapshot to change it\n",
                   Opts.CongruenceGiven ? "--congruence" : "--policy");
      return 2;
    }
  }
  if (!Opts.SaveSnapshot.empty() && Opts.SnapshotCache) {
    std::fprintf(stderr, "error: --save-snapshot conflicts with "
                         "--snapshot-cache: pick one destination\n");
    return 2;
  }
  if (!Opts.SaveSnapshot.empty() && Opts.Analysis != "subtransitive" &&
      Opts.Analysis != "poly") {
    std::fprintf(stderr,
                 "error: --save-snapshot persists the frozen subtransitive "
                 "graph (--analysis=subtransitive|poly); --analysis=%s "
                 "builds none\n",
                 Opts.Analysis.c_str());
    return 2;
  }

  // Exporter lives on main's stack so every later return path — governed
  // aborts included — still writes the requested trace/metrics files.
  struct ObservabilityExport {
    const Options &Opts;
    ~ObservabilityExport() {
      if (!Opts.TraceJson.empty() && !writeChromeTrace(Opts.TraceJson))
        std::fprintf(stderr, "warning: cannot write trace to '%s'\n",
                     Opts.TraceJson.c_str());
      if (!Opts.MetricsJson.empty()) {
        std::ofstream Out(Opts.MetricsJson);
        if (Out)
          Out << snapshotMetrics().toJson() << "\n";
        if (!Out.good())
          std::fprintf(stderr, "warning: cannot write metrics to '%s'\n",
                       Opts.MetricsJson.c_str());
      }
    }
  } Exporter{Opts};
  if (!Opts.TraceJson.empty()) {
    setTracingEnabled(true);
    if (!tracingCompiledIn())
      std::fprintf(stderr, "warning: tracing compiled out "
                           "(-DSTCFA_TRACING=OFF); '%s' will hold an "
                           "empty trace\n",
                   Opts.TraceJson.c_str());
  }

  // `--serve`: hand stdin/stdout to the daemon; everything else in this
  // file is the batch pipeline, which the daemon re-runs per 'load'.
  if (Opts.Serve) {
    serve::ServeOptions SO;
    SO.Threads = Opts.Threads;
    SO.KernelThreshold = Opts.KernelThreshold;
    SO.DefaultDeadlineMs = Opts.TimeoutMs;
    SO.MaxInflightCost = Opts.ServeMaxCost;
    SO.MaxRequestBytes = Opts.ServeMaxRequestMb << 20;
    SO.SnapshotCache = Opts.SnapshotCache;
    SO.SnapshotDir = Opts.SnapshotDir;
    SO.SnapshotCacheMaxBytes = Opts.SnapshotCacheMaxMb << 20;
    if (!Opts.Degrade.empty())
      SO.Degrade = Opts.Degrade;
    SO.Stats = Opts.Stats;
    serve::Server Daemon(0, 1, SO);
    return Daemon.run();
  }

  // `--load-snapshot`: the whole front half of the pipeline — read,
  // parse, infer, build, close, freeze — is replaced by one mmap.
  if (!Opts.LoadSnapshot.empty()) {
    Status LoadStatus = Status::ok();
    std::unique_ptr<LoadedSnapshot> Snap =
        LoadedSnapshot::load(Opts.LoadSnapshot, LoadStatus);
    if (!Snap) {
      std::fprintf(stderr, "error: %s\n", LoadStatus.toString().c_str());
      return 1;
    }
    // When an input was named alongside the snapshot, verify the header's
    // content hash against it — a stale snapshot must never silently
    // answer for edited source.  (Stdin is not drained for this.)
    std::string VerifiedSource;
    if (!Opts.Corpus.empty() ||
        (!Opts.InputFile.empty() && Opts.InputFile != "-")) {
      bool Ok = true;
      VerifiedSource = loadInput(Opts, Ok);
      if (!Ok)
        return 1;
      uint64_t Key =
          snapshotCacheKey(VerifiedSource, snapshotConfigString(Opts));
      if (Snap->contentHash() != 0 && Snap->contentHash() != Key) {
        std::fprintf(stderr,
                     "error: snapshot '%s' was built from different source "
                     "or configuration than the given input; rebuild it "
                     "with --save-snapshot\n",
                     Opts.LoadSnapshot.c_str());
        return 1;
      }
    }
    // `--lint` over the mapping: flag validation guaranteed an input was
    // named, so VerifiedSource holds the (hash-checked) program text.
    if (Opts.Lint)
      return lintOverSnapshot(Opts, *Snap, VerifiedSource);
    return serveFromSnapshot(Opts, *Snap);
  }

  bool Ok = true;
  std::string Source = loadInput(Opts, Ok);
  if (!Ok)
    return 1;

  // `--snapshot-cache`: content-addressed reuse.  A hit serves straight
  // from the mapped file (no parse below this line); a miss runs the
  // normal pipeline and fills the cache after the freeze.
  uint64_t CacheKey = 0;
  std::string CachePath;
  if (Opts.SnapshotCache) {
    CacheKey = snapshotCacheKey(Source, snapshotConfigString(Opts));
    CachePath =
        snapshotCachePath(snapshotCacheDir(Opts.SnapshotDir), CacheKey);
    Status CacheStatus = Status::ok();
    if (std::unique_ptr<LoadedSnapshot> Snap =
            LoadedSnapshot::load(CachePath, CacheStatus)) {
      if (Snap->contentHash() == CacheKey) {
        counter("snapshot.cache-hits").inc();
        touchSnapshotEntry(CachePath); // a hit refreshes the LRU order
        traceInstant("snapshot.cache-hit");
        if (Opts.Stats)
          std::printf("snapshot cache: hit %s\n", CachePath.c_str());
        return serveFromSnapshot(Opts, *Snap);
      }
      // A key collision with a different content hash: fall through and
      // rebuild rather than serve the wrong program's answers.
      Snap.reset();
    }
    counter("snapshot.cache-misses").inc();
    traceInstant("snapshot.cache-miss");
    if (Opts.Stats)
      std::printf("snapshot cache: miss (%s)\n", CachePath.c_str());
  }

  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  if (!M) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  DiagnosticEngine InferDiags;
  bool Typed = inferTypes(*M, InferDiags);
  if (!Typed)
    std::fprintf(stderr, "note: type inference failed (%s); "
                         "continuing untyped — termination is not "
                         "guaranteed by the paper, widening applies\n",
                 InferDiags.diagnostics().empty()
                     ? "?"
                     : InferDiags.diagnostics().front().Message.c_str());

  if (Opts.Print)
    std::printf("%s", printProgram(*M).c_str());

  if (Opts.Stats) {
    std::printf("program: %u exprs, %u binders, %u abstractions, %u "
                "constructors\n",
                M->numExprs(), M->numVars(), M->numLabels(), M->numCons());
    if (Typed) {
      TypeMetrics TM = computeTypeMetrics(*M);
      std::printf("types: max size %u, avg size %.2f (k_avg), max order "
                  "%u, max arity %u\n",
                  TM.MaxTypeSize, TM.AvgTypeSize, TM.MaxOrder, TM.MaxArity);
    }
  }

  SubtransitiveConfig GC;
  if (Opts.Congruence == "none")
    GC.Congruence = CongruenceMode::None;
  else if (Opts.Congruence == "bytype")
    GC.Congruence = CongruenceMode::ByType;
  else if (Opts.Congruence == "bybase")
    GC.Congruence = CongruenceMode::ByBaseAndType;
  else
    return usage(Argv[0]);
  if (Opts.Policy == "paper")
    GC.Policy = ClosurePolicy::PaperExact;
  else if (Opts.Policy == "nodeexists")
    GC.Policy = ClosurePolicy::NodeExists;
  else if (Opts.Policy == "undemanded")
    GC.Policy = ClosurePolicy::Undemanded;
  else
    return usage(Argv[0]);

  // One absolute deadline covers the whole pipeline (analysis, freeze,
  // queries): later stages see only whatever wall-clock remains.
  GC.MaxNodes = Opts.CloseBudget;
  Deadline D = Opts.TimeoutMs >= 0 ? Deadline::afterMillis(Opts.TimeoutMs)
                                   : Deadline::infinite();
  int ExitCode = 0;

  AnalysisResult R;
  Timer T;
  if (Opts.Analysis == "standard") {
    R.Std = std::make_unique<StandardCFA>(*M);
    Status S = R.Std->run(D);
    if (!S.isOk()) {
      std::fprintf(stderr, "error: standard analysis aborted: %s\n",
                   S.toString().c_str());
      return 3;
    }
  } else if (Opts.Analysis == "unify") {
    R.Uni = std::make_unique<UnificationCFA>(*M);
    R.Uni->run();
  } else if (Opts.Analysis == "poly") {
    R.Poly = std::make_unique<PolyvariantCFA>(*M, GC);
    R.Poly->run();
    if (R.Poly->graph().aborted()) {
      std::fprintf(stderr, "error: close aborted: %s\n",
                   R.Poly->graph().closeStatus().toString().c_str());
      return R.Poly->graph().closeStatus() == StatusCode::ResourceExhausted
                 ? 6
                 : 3;
    }
    R.Reach = std::make_unique<Reachability>(R.Poly->graph());
  } else if (Opts.Analysis == "hybrid") {
    HybridOptions HO;
    HO.BudgetFactor = 8;
    HO.Threads = Opts.Threads;
    HO.D = D;
    HO.Degrade = Opts.Degrade == "off"       ? DegradeMode::Off
                 : Opts.Degrade == "partial" ? DegradeMode::Partial
                                             : DegradeMode::Standard;
    if (Opts.KernelThreshold >= 0)
      HO.KernelThreshold = static_cast<size_t>(Opts.KernelThreshold);
    if (Opts.KernelChunkRows >= 0)
      HO.KernelChunkRows = static_cast<uint32_t>(Opts.KernelChunkRows);
    R.Hybrid = std::make_unique<HybridCFA>(*M, HO);
    Status S = R.Hybrid->solve();
    if (Opts.Stats) {
      std::printf("hybrid engine: %s\n", engineName(R.Hybrid->engine()));
      std::printf("degradation report: %s\n",
                  R.Hybrid->report().toJson().c_str());
    }
    if (!S.isOk()) {
      std::fprintf(stderr, "error: hybrid analysis served no answer: %s\n",
                   S.toString().c_str());
      return S == StatusCode::ResourceExhausted ? 6 : 3;
    }
    if (Opts.governed()) {
      if (R.Hybrid->engine() == HybridCFA::Engine::Standard)
        ExitCode = 4;
      else if (R.Hybrid->engine() == HybridCFA::Engine::PartialAnswer)
        ExitCode = 5;
    }
  } else if (Opts.Analysis == "subtransitive") {
    R.Graph = std::make_unique<SubtransitiveGraph>(*M, GC);
    R.Graph->build();
    Status S = R.Graph->close(D);
    if (!S.isOk()) {
      std::fprintf(stderr, "error: close aborted: %s\n",
                   S.toString().c_str());
      return S == StatusCode::ResourceExhausted ? 6 : 3;
    }
    R.Reach = std::make_unique<Reachability>(*R.Graph);
  } else {
    return usage(Argv[0]);
  }
  R.AnalysisMs = T.millis();

  // `--frozen`: compact the graph into a CSR snapshot and serve every
  // query through the (optionally parallel) engine.  The hybrid analysis
  // freezes internally on subtransitive success.
  if (Opts.Frozen && R.graph() && !R.Hybrid) {
    const SubtransitiveGraph *G = R.graph();
    if (G->closed() && !G->aborted()) {
      R.Snapshot = std::make_unique<FrozenGraph>(*G);
      R.Engine = std::make_unique<QueryEngine>(*R.Snapshot, Opts.Threads);
      if (Opts.KernelThreshold >= 0)
        R.Engine->setKernelThreshold(
            static_cast<size_t>(Opts.KernelThreshold));
      if (Opts.KernelChunkRows >= 0)
        R.Engine->setKernelChunkRows(
            static_cast<uint32_t>(Opts.KernelChunkRows));
    } else {
      std::fprintf(stderr, "note: --frozen ignored (graph not closed or "
                           "aborted)\n");
    }
  }

  // `--save-snapshot` / the `--snapshot-cache` miss fill: persist the
  // fresh frozen graph (and its complete kernel matrix) for later warm
  // loads.  Both imply --frozen, so R.Snapshot is set whenever the
  // subtransitive/poly pipeline closed cleanly.
  if (!Opts.SaveSnapshot.empty() || (Opts.SnapshotCache && !CachePath.empty())) {
    if (!R.Snapshot || !R.Snapshot->status().isOk()) {
      std::fprintf(stderr, "error: cannot persist a snapshot: no frozen "
                           "graph (close incomplete or analysis "
                           "graph-free)\n");
      return 1;
    }
    const std::string &Dest =
        !Opts.SaveSnapshot.empty() ? Opts.SaveSnapshot : CachePath;
    uint64_t Key = Opts.SnapshotCache
                       ? CacheKey
                       : snapshotCacheKey(Source, snapshotConfigString(Opts));
    Status WS = Status::ok();
    if (Opts.SnapshotCache)
      WS = ensureSnapshotDir(snapshotCacheDir(Opts.SnapshotDir));
    if (WS.isOk())
      WS = persistSnapshot(Dest, *R.Snapshot, *M, Key, Opts.Threads);
    if (!WS.isOk()) {
      std::fprintf(stderr, "error: %s\n", WS.toString().c_str());
      return 1;
    }
    if (Opts.SnapshotCache && Opts.SnapshotCacheMaxMb != 0) {
      size_t Evicted = enforceSnapshotCacheBudget(
          snapshotCacheDir(Opts.SnapshotDir),
          Opts.SnapshotCacheMaxMb << 20);
      if (Evicted != 0 && Opts.Stats)
        std::printf("snapshot cache: evicted %zu entr%s (cap %llu MiB)\n",
                    Evicted, Evicted == 1 ? "y" : "ies",
                    (unsigned long long)Opts.SnapshotCacheMaxMb);
    }
    if (Opts.Stats)
      std::printf("snapshot: wrote %s\n", Dest.c_str());
  }

  if (Opts.Stats) {
    std::printf("analysis: %s in %.3f ms\n", Opts.Analysis.c_str(),
                R.AnalysisMs);
    if (const SubtransitiveGraph *G = R.graph()) {
      const GraphStats &S = G->stats();
      std::printf("graph: build %llu nodes / %llu edges, close +%llu nodes "
                  "/ +%llu edges, %llu rule firings, %llu widenings\n",
                  (unsigned long long)S.BuildNodes,
                  (unsigned long long)S.BuildEdges,
                  (unsigned long long)S.CloseNodes,
                  (unsigned long long)S.CloseEdges,
                  (unsigned long long)S.CloseRuleFirings,
                  (unsigned long long)S.Widenings);
    }
    if (const FrozenGraph *F = R.frozen())
      std::printf("frozen: %u nodes / %llu edges compacted in %.3f ms, "
                  "%u query lane(s)\n",
                  F->numNodes(), (unsigned long long)F->numEdges(),
                  F->freezeMillis(),
                  R.engine() ? R.engine()->threads() : 1);
    if (R.Std)
      std::printf("standard: %llu propagations, %llu insertions, %llu "
                  "edges\n",
                  (unsigned long long)R.Std->stats().Propagations,
                  (unsigned long long)R.Std->stats().SetInsertions,
                  (unsigned long long)R.Std->stats().Edges);
    if (R.Uni)
      std::printf("unify: %llu unions, %u classes\n",
                  (unsigned long long)R.Uni->unions(), R.Uni->numClasses());
  }

  if (Opts.DumpGraph) {
    if (const SubtransitiveGraph *G = R.graph()) {
      for (uint32_t N = 0; N != G->numNodes(); ++N)
        for (NodeId S : G->succs(NodeId(N)))
          std::printf("%s -> %s\n", G->describe(NodeId(N)).c_str(),
                      G->describe(S).c_str());
    } else {
      std::fprintf(stderr, "error: --dump-graph requires a graph analysis\n");
      return 1;
    }
  }

  // `--lint`: run the checker passes over the frozen graph and render;
  // replaces the query path entirely (validated above).
  if (Opts.Lint) {
    const SubtransitiveGraph *G = R.graph();
    const FrozenGraph *F = R.frozen();
    if (!G || !F || !F->status().isOk()) {
      std::fprintf(stderr,
                   "error: --lint requires a frozen subtransitive graph\n");
      return 1;
    }
    LintEngine Lint(*G, *F);
    LintOptions LO;
    LO.Passes = Opts.LintPasses;
    LO.D = D;
    LO.Threads = Opts.Threads;
    Timer LintTimer;
    LintResult LR = Lint.run(LO);
    std::string InputName =
        !Opts.InputFile.empty() && Opts.InputFile != "-" ? Opts.InputFile
        : !Opts.Corpus.empty() ? "corpus:" + Opts.Corpus
                               : "stdin";
    std::string Rendered = Opts.LintFormat == "json"
                               ? renderLintJson(LR, InputName)
                           : Opts.LintFormat == "sarif"
                               ? renderLintSarif(LR, InputName)
                               : renderLintText(LR, InputName);
    std::fputs(Rendered.c_str(), stdout);
    if (Opts.Stats)
      std::printf("lint: %u pass(es) in %.3f ms\n",
                  (unsigned)LR.Reports.size(), LintTimer.millis());
    // Error-severity findings outrank the governed partial-result code.
    if (LR.NumErrors > 0)
      return 7;
    if (LR.anyPartial() && Opts.governed())
      return 3;
    return ExitCode;
  }

  Timer QueryTimer;
  if (Opts.Query == "labels") {
    std::printf("L(root) = %s\n", renderSet(*M, R.labels(M->root())).c_str());
  } else if (Opts.Query == "all-labels") {
    QueryEngine *E = R.engine();
    if (E && Opts.TimeoutMs >= 0) {
      // Governed batch: the engine polls the deadline between shards and
      // returns whatever completed, flagged per item.
      std::vector<ExprId> Es;
      Es.reserve(M->numExprs());
      for (uint32_t I = 0; I != M->numExprs(); ++I)
        Es.push_back(ExprId(I));
      BatchControl BC;
      BC.D = D;
      BatchOutcome Outcome;
      std::vector<DenseBitset> Sets = E->labelsOfBatch(Es, BC, Outcome);
      for (uint32_t I = 0; I != M->numExprs(); ++I) {
        if (!Outcome.Done[I] || Sets[I].empty())
          continue;
        std::printf("%-18s %s\n", describeExpr(*M, ExprId(I)).c_str(),
                    renderSet(*M, Sets[I]).c_str());
      }
      if (!Outcome.S.isOk()) {
        std::fprintf(stderr,
                     "note: batch stopped early: %s (%llu of %u answered)\n",
                     Outcome.S.toString().c_str(),
                     (unsigned long long)Outcome.Completed, M->numExprs());
        ExitCode = 3;
      }
    } else if (E) {
      // Ungoverned but engine-served: one batched call, so the full
      // all-labels sweep rides the label-set kernel above the dispatch
      // threshold instead of one BFS per occurrence.
      std::vector<ExprId> Es;
      Es.reserve(M->numExprs());
      for (uint32_t I = 0; I != M->numExprs(); ++I)
        Es.push_back(ExprId(I));
      std::vector<DenseBitset> Sets = E->labelsOfBatch(Es);
      for (uint32_t I = 0; I != M->numExprs(); ++I) {
        if (Sets[I].empty())
          continue;
        std::printf("%-18s %s\n", describeExpr(*M, ExprId(I)).c_str(),
                    renderSet(*M, Sets[I]).c_str());
      }
    } else {
      for (uint32_t I = 0; I != M->numExprs(); ++I) {
        DenseBitset Set = R.labels(ExprId(I));
        if (Set.empty())
          continue;
        std::printf("%-18s %s\n", describeExpr(*M, ExprId(I)).c_str(),
                    renderSet(*M, Set).c_str());
      }
    }
  } else if (Opts.Query == "effects") {
    const SubtransitiveGraph *G = R.graph();
    if (!G) {
      std::fprintf(stderr, "error: effects needs a graph analysis\n");
      return 1;
    }
    EffectsAnalysis Eff(*G, R.frozen());
    Eff.run();
    std::printf("%u side-effecting occurrences\n", Eff.numEffectful());
    for (uint32_t I = 0; I != M->numExprs(); ++I)
      if (Eff.isEffectful(ExprId(I)))
        std::printf("  %s\n", describeExpr(*M, ExprId(I)).c_str());
  } else if (Opts.Query == "called-once") {
    const SubtransitiveGraph *G = R.graph();
    if (!G) {
      std::fprintf(stderr, "error: called-once needs a graph analysis\n");
      return 1;
    }
    CalledOnceAnalysis CO(*G, R.frozen());
    CO.run();
    for (LabelId L : CO.calledOnce())
      std::printf("called once: %s at %s\n", labelName(*M, L).c_str(),
                  describeExpr(*M, CO.uniqueCallSite(L)).c_str());
  } else if (Opts.Query == "callgraph") {
    const SubtransitiveGraph *G = R.graph();
    if (!G) {
      std::fprintf(stderr, "error: callgraph needs a graph analysis\n");
      return 1;
    }
    CallGraph CG(*G, R.engine());
    CG.run();
    for (uint32_t Caller = 0; Caller != CG.numCallers(); ++Caller) {
      if (CG.calleesOf(Caller).empty())
        continue;
      std::string Name = Caller == CG.rootIndex()
                             ? "<top-level>"
                             : labelName(*M, LabelId(Caller));
      std::printf("%s calls:", Name.c_str());
      CG.calleesOf(Caller).forEach([&](uint32_t L) {
        std::printf(" %s", labelName(*M, LabelId(L)).c_str());
      });
      std::printf("\n");
    }
    for (LabelId Dead : CG.deadFunctions())
      std::printf("dead: %s\n", labelName(*M, Dead).c_str());
  } else if (Opts.Query == "dead-code") {
    DeadCodeAwareCFA Dc(*M);
    Dc.run();
    uint32_t DeadExprs = 0;
    for (uint32_t I = 0; I != M->numExprs(); ++I)
      DeadExprs += !Dc.isLive(ExprId(I));
    std::printf("%u of %u occurrences are dead code\n", DeadExprs,
                M->numExprs());
    for (LabelId Dead : Dc.deadFunctions())
      std::printf("never called: %s\n", labelName(*M, Dead).c_str());
    // Cross-check against the frozen engine when available: a function the
    // (over-approximating) subtransitive flow never calls must also be dead
    // under the liveness-gated analysis.
    if (QueryEngine *E = R.engine()) {
      CallGraph CG(*R.graph(), E);
      CG.run();
      uint32_t Agree = 0, Mismatch = 0;
      for (LabelId L : CG.deadFunctions()) {
        bool Dead = false;
        for (LabelId D : Dc.deadFunctions())
          Dead |= D == L;
        (Dead ? Agree : Mismatch) += 1;
      }
      if (Mismatch)
        std::printf("engine cross-check: %u never-called function(s) NOT "
                    "dead-code-aware dead (unexpected)\n",
                    Mismatch);
      else
        std::printf("engine cross-check: %u never-called function(s) "
                    "confirmed dead\n",
                    Agree);
    }
  } else if (startsWith(Opts.Query, "klimited:")) {
    const SubtransitiveGraph *G = R.graph();
    if (!G) {
      std::fprintf(stderr, "error: klimited needs a graph analysis\n");
      return 1;
    }
    uint32_t K = std::stoul(Opts.Query.substr(9));
    KLimitedCFA KL(*G, K, R.frozen());
    KL.run();
    for (uint32_t I = 0; I != M->numExprs(); ++I) {
      const auto *A = dyn_cast<AppExpr>(M->expr(ExprId(I)));
      if (!A)
        continue;
      const LimitedSet &S = KL.ofCallSite(ExprId(I));
      std::string Callees;
      if (S.isMany()) {
        Callees = "many";
      } else {
        for (uint32_t L : S.ids())
          Callees += (Callees.empty() ? "" : ", ") +
                     labelName(*M, LabelId(L));
        if (Callees.empty())
          Callees = "none";
      }
      std::printf("%-18s calls: %s\n", describeExpr(*M, ExprId(I)).c_str(),
                  Callees.c_str());
    }
  } else {
    return usage(Argv[0]);
  }
  if (Opts.Stats)
    std::printf("queries: %.3f ms\n", QueryTimer.millis());

  if (Opts.Run) {
    InterpreterResult Run = interpret(*M, 50000000);
    for (const std::string &Line : Run.Output)
      std::printf("output: %s\n", Line.c_str());
    if (Run.Completed)
      std::printf("result: %s (in %llu steps)\n", Run.FinalValue.c_str(),
                  (unsigned long long)Run.Steps);
    else
      std::printf("aborted: %s\n", Run.Abort.c_str());
  }

  return ExitCode;
}
